#include "mpisim/comm.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "mpisim/shared_state.hpp"

namespace gbpol::mpisim {

int Comm::size() const { return shared_->ranks; }

void Comm::barrier() {
  shared_->sync.arrive_and_wait();
  charge(shared_->cost.barrier());
}

namespace {
enum class FoldOp { kSum, kMin, kMax };
}

void Comm::allreduce_sum(std::span<double> data) {
  allreduce_fold(data, static_cast<int>(FoldOp::kSum));
}
void Comm::allreduce_min(std::span<double> data) {
  allreduce_fold(data, static_cast<int>(FoldOp::kMin));
}
void Comm::allreduce_max(std::span<double> data) {
  allreduce_fold(data, static_cast<int>(FoldOp::kMax));
}

void Comm::allreduce_fold(std::span<double> data, int op) {
  SharedState& s = *shared_;
  s.publish[rank_] = data.data();
  s.sync.arrive_and_wait();
  // Every rank folds contributions in strict rank order (including its own
  // slot), so FP sums are deterministic AND identical on all ranks; min/max
  // are order-independent anyway.
  std::vector<double> total(data.size(),
                            static_cast<FoldOp>(op) == FoldOp::kSum ? 0.0
                            : static_cast<FoldOp>(op) == FoldOp::kMin
                                ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity());
  for (int r = 0; r < s.ranks; ++r) {
    const auto* src = static_cast<const double*>(s.publish[r]);
    for (std::size_t i = 0; i < data.size(); ++i) {
      switch (static_cast<FoldOp>(op)) {
        case FoldOp::kSum: total[i] += src[i]; break;
        case FoldOp::kMin: total[i] = std::min(total[i], src[i]); break;
        case FoldOp::kMax: total[i] = std::max(total[i], src[i]); break;
      }
    }
  }
  s.sync.arrive_and_wait();  // everyone done reading
  std::memcpy(data.data(), total.data(), data.size_bytes());
  s.sync.arrive_and_wait();  // publish slots free for reuse
  charge(s.cost.allreduce(data.size_bytes()));
  bytes_sent_ += data.size_bytes();
}

void Comm::reduce_sum(std::span<double> data, int root) {
  SharedState& s = *shared_;
  s.publish[rank_] = data.data();
  s.sync.arrive_and_wait();
  std::vector<double> total;
  if (rank_ == root) {
    total.assign(data.size(), 0.0);
    for (int r = 0; r < s.ranks; ++r) {
      const auto* src = static_cast<const double*>(s.publish[r]);
      for (std::size_t i = 0; i < data.size(); ++i) total[i] += src[i];
    }
  }
  s.sync.arrive_and_wait();
  if (rank_ == root) std::memcpy(data.data(), total.data(), data.size_bytes());
  s.sync.arrive_and_wait();
  charge(s.cost.reduce(data.size_bytes()));
  if (rank_ != root) bytes_sent_ += data.size_bytes();
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root) {
  SharedState& s = *shared_;
  if (rank_ == root) s.publish[root] = data;
  s.sync.arrive_and_wait();
  if (rank_ != root) std::memcpy(data, s.publish[root], bytes);
  s.sync.arrive_and_wait();
  charge(s.cost.bcast(bytes));
  if (rank_ == root) bytes_sent_ += bytes;
}

void Comm::allgatherv_bytes(const void* send, void* recv, std::size_t elem_size,
                            std::span<const int> counts, std::span<const int> displs) {
  SharedState& s = *shared_;
  s.publish[rank_] = send;
  s.sync.arrive_and_wait();
  std::size_t total_bytes = 0;
  for (int r = 0; r < s.ranks; ++r) {
    const std::size_t bytes = static_cast<std::size_t>(counts[r]) * elem_size;
    auto* dst = static_cast<std::byte*>(recv) +
                static_cast<std::size_t>(displs[r]) * elem_size;
    // Each rank's own slice may alias recv; memmove tolerates overlap.
    std::memmove(dst, s.publish[r], bytes);
    total_bytes += bytes;
  }
  s.sync.arrive_and_wait();
  charge(s.cost.allgatherv(total_bytes));
  bytes_sent_ += static_cast<std::size_t>(counts[rank_]) * elem_size;
}

void Comm::charge_rpc(int peer, std::size_t bytes) {
  SharedState& s = *shared_;
  charge(2.0 * s.cost.p2p(rank_, peer, bytes));  // request + response
  bytes_sent_ += bytes;
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dst, int tag) {
  SharedState& s = *shared_;
  Mailbox& mb = *s.mailboxes[static_cast<std::size_t>(dst)];
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
  charge(s.cost.p2p(rank_, dst, bytes));
  bytes_sent_ += bytes;
}

void Comm::recv_bytes(void* data, std::size_t bytes, int src, int tag) {
  SharedState& s = *shared_;
  Mailbox& mb = *s.mailboxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lock(mb.mutex);
  for (;;) {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        if (it->payload.size() != bytes) {
          // Size mismatch is a programming error in the caller.
          std::terminate();
        }
        std::memcpy(data, it->payload.data(), bytes);
        mb.queue.erase(it);
        charge(s.cost.p2p(src, rank_, bytes));
        return;
      }
    }
    mb.cv.wait(lock);
  }
}

}  // namespace gbpol::mpisim
