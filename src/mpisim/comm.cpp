#include "mpisim/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <limits>

#include "mpisim/shared_state.hpp"
#include "support/checksum.hpp"

namespace gbpol::mpisim {

Comm::Comm(SharedState& shared, int rank)
    : shared_(&shared),
      rank_(rank),
      send_seq_(static_cast<std::size_t>(shared.ranks), 0) {}

int Comm::size() const { return shared_->ranks; }

const CorruptionSchedule& Comm::corruption_schedule() const {
  return shared_->corruption;
}

bool Comm::integrity_guards() const { return shared_->integrity_guards; }

void Comm::note_corruption_injected() {
  ++corruption_injected_;
  obs::add_corruption_injected(rank_);
}

void Comm::note_corruption_detected() {
  ++corruption_detected_;
  obs::add_corruption_detected(rank_);
}

void Comm::note_corruption_recomputed() {
  ++corruption_recomputed_;
  obs::add_corruption_recompute(rank_);
}

// Site codes for the corruption trace events' arg byte.
namespace {
constexpr std::uint8_t kSiteMessage = 0;
constexpr std::uint8_t kSiteCollective = 1;
}  // namespace

const void* Comm::integrity_fetch(const void* published, std::size_t bytes,
                                  int publisher, std::uint64_t seq,
                                  std::vector<std::byte>& scratch) {
  SharedState& s = *shared_;
  std::uint64_t bit = 0;
  if (publisher == rank_ || bytes == 0 ||
      !s.corruption.collective_bit(publisher, rank_, seq, &bit))
    return published;
  // The flip happens on the wire: the publisher's buffer stays pristine,
  // only this rank's received copy carries the flipped bit.
  scratch.assign(static_cast<const std::byte*>(published),
                 static_cast<const std::byte*>(published) + bytes);
  support::flip_bit(scratch.data(), bytes, bit);
  ++corruption_injected_;
  obs::add_corruption_injected(rank_);
  obs::emit(obs::EventKind::kCorruptionInject, seq, bytes, kSiteCollective);
  if (!s.integrity_guards) return scratch.data();
  // Guarded read: the received copy must reproduce the publisher's block
  // digests. On mismatch, recovery re-reads the publication — modeled as
  // one retransmit round (backoff window + fresh p2p leg from the
  // publisher), after which the copy is clean by construction.
  const support::BlockChecksum expected =
      support::block_checksum(published, bytes);
  if (!support::diff_blocks(expected, scratch.data(), bytes).empty()) {
    ++corruption_detected_;
    ++corruption_retransmits_;
    ++retries_;
    charge(s.cost.backoff(0) + s.cost.p2p(publisher, rank_, bytes));
    obs::add_corruption_detected(rank_);
    obs::add_corruption_retransmit(rank_);
    obs::emit(obs::EventKind::kCorruptionDetect, seq, bytes, kSiteCollective);
    obs::emit(obs::EventKind::kCorruptionRetransmit, seq, bytes,
              kSiteCollective);
    return published;
  }
  // Unreachable for single-bit flips (CRC32 detects them all); kept so an
  // undetectable pattern would flow through corrupted and fail loudly in
  // the equivalence tests rather than masking a guard bug here.
  return scratch.data();
}

void Comm::die_now(std::uint64_t seq, obs::DeathCause cause) {
  // The rank dies without publishing. It still arrives once (so peers
  // waiting on the current phase proceed) but drops out of the expected
  // count for every later phase, then unwinds to the Runtime. Sleepers in
  // recv are woken to re-check peer liveness.
  obs::emit(obs::EventKind::kDeath, seq, 0, static_cast<std::uint8_t>(cause));
  SharedState& s = *shared_;
  s.dead[static_cast<std::size_t>(rank_)].store(true, std::memory_order_release);
  s.sync.arrive_and_drop();
  s.wake_all_mailboxes();
  throw RankKilled{rank_, seq};
}

std::uint64_t Comm::enter_collective(const void* own_data,
                                     std::span<const ProxyPub> proxies,
                                     obs::CollKind kind) {
  SharedState& s = *shared_;
  const std::uint64_t seq = collective_seq_++;
  tick_ = 0;
  // Enter precedes any death/stall event carrying the same seq, so every
  // kDeath/kStallPark in a stream has a matching kCollectiveEnter before it.
  obs::emit(obs::EventKind::kCollectiveEnter, seq, 0,
            static_cast<std::uint8_t>(kind));
  s.heartbeat[static_cast<std::size_t>(rank_)].fetch_add(1, std::memory_order_relaxed);
  if (s.kill_all.load(std::memory_order_acquire))
    die_now(seq, obs::DeathCause::kKilled);
  if (s.faults.dies_at(rank_, seq)) die_now(seq, obs::DeathCause::kScheduled);
  if (s.faults.stalls_at(rank_, seq)) {
    // Injected stall: freeze here — holding the barrier slot, heartbeat
    // stagnant — until the supervisor watchdog (or a process kill) breaks
    // the stall. Conversion reuses the ordinary death path, so survivors
    // recover exactly as they would from a crash.
    obs::emit(obs::EventKind::kStallPark, seq);
    {
      std::unique_lock<std::mutex> lock(s.stall_mutex);
      s.in_stall[static_cast<std::size_t>(rank_)].store(true,
                                                        std::memory_order_release);
      s.stall_cv.notify_all();  // let a waiting supervisor see the entry
      s.stall_cv.wait(lock, [&] {
        return s.stall_break[static_cast<std::size_t>(rank_)].load(
                   std::memory_order_acquire) ||
               s.kill_all.load(std::memory_order_acquire);
      });
      s.in_stall[static_cast<std::size_t>(rank_)].store(false,
                                                        std::memory_order_release);
    }
    if (s.stall_break[static_cast<std::size_t>(rank_)].load(std::memory_order_acquire)) {
      s.stalls_converted.fetch_add(1, std::memory_order_relaxed);
      die_now(seq, obs::DeathCause::kStallConverted);
    }
    die_now(seq, obs::DeathCause::kKilled);
  }
  if (own_data != nullptr) s.publish[static_cast<std::size_t>(rank_)] = {own_data, seq};
  for (const ProxyPub& p : proxies)
    s.publish[static_cast<std::size_t>(p.rank)] = {p.data, seq};
  return seq;
}

bool Comm::poll_kill() {
  SharedState& s = *shared_;
  s.heartbeat[static_cast<std::size_t>(rank_)].fetch_add(1, std::memory_order_relaxed);
  ++tick_;
  const KillPlan& plan = s.kill;
  if (plan.armed && plan.rank == rank_ && plan.collective_seq == collective_seq_ &&
      plan.tick == tick_ && !s.kill_all.load(std::memory_order_acquire)) {
    s.kill_all.store(true, std::memory_order_release);
    // Stalled ranks wait on kill_all too; wake them so they exit promptly.
    std::lock_guard<std::mutex> lock(s.stall_mutex);
    s.stall_cv.notify_all();
  }
  const bool armed = s.kill_all.load(std::memory_order_acquire);
  obs::emit(obs::EventKind::kKillPoll, collective_seq_, tick_, armed ? 1 : 0);
  return armed;
}

bool Comm::kill_requested() const {
  return shared_->kill_all.load(std::memory_order_acquire);
}

void Comm::abandon() { die_now(collective_seq_, obs::DeathCause::kKilled); }

// Runs between the collective's first and second barriers, where the dead
// flags and publish slots are frozen (a rank can only die at the entry of a
// LATER collective, which it cannot reach before this one's second barrier).
// Hence every survivor computes the same vectors.
CollectiveStatus Comm::scan_dead(std::uint64_t seq) const {
  const SharedState& s = *shared_;
  CollectiveStatus st;
  for (int r = 0; r < s.ranks; ++r) {
    if (!s.is_dead(r)) continue;
    st.dead.push_back(r);
    if (s.publish[static_cast<std::size_t>(r)].seq != seq) st.missing.push_back(r);
  }
  return st;
}

void Comm::abort_collective(CollectiveStatus& st, std::uint64_t seq,
                            obs::CollKind kind) {
  st.error = CommError::kRankDied;
  ++retries_;
  obs::emit(obs::EventKind::kCollectiveAbort, seq,
            static_cast<std::uint64_t>(retry_streak_),
            static_cast<std::uint8_t>(kind));
  // Modeled cost of discovering the failure and re-entering: one barrier of
  // agreement plus an exponential backoff window.
  charge(shared_->cost.barrier() + shared_->cost.backoff(retry_streak_++));
}

void Comm::require_ok(const CollectiveStatus& st, const char* what) const {
  if (st.ok()) return;
  // The legacy void collectives have no recovery channel; a dead peer here
  // is unrecoverable, exactly like a crashed MPI process: fail fast rather
  // than deadlock.
  std::fprintf(stderr,
               "mpisim: rank %d: %s observed a dead rank with no recovery "
               "protocol attached\n",
               rank_, what);
  std::terminate();
}

void Comm::require_recv_ok(const RecvStatus& st, int src) const {
  if (st.ok()) return;
  std::fprintf(stderr, "mpisim: rank %d: recv from %d failed (%s)\n", rank_, src,
               st.error == CommError::kPeerDead ? "peer dead" : "watchdog timeout");
  std::terminate();
}

void Comm::barrier() {
  const std::uint64_t seq = enter_collective(nullptr, {}, obs::CollKind::kBarrier);
  shared_->sync.arrive_and_wait();
  const double cost = shared_->cost.barrier();
  charge(cost);
  obs::emit(obs::EventKind::kCollectiveExit, seq, 0,
            static_cast<std::uint8_t>(obs::CollKind::kBarrier));
  obs::add_collective(rank_, obs::CollKind::kBarrier, 0, cost);
}

void Comm::add_compute_seconds(double s) {
  compute_seconds_ += s;
  const double factor = shared_->faults.slowdown(rank_);
  if (factor > 1.0) straggler_seconds_ += (factor - 1.0) * s;
  // Attribute measured busy time to the driver phase open on this thread, so
  // summed per-rank phase busy reconciles with RankResult::compute_seconds.
  obs::add_phase_busy(rank_, s);
}

void Comm::allreduce_sum(std::span<double> data) {
  require_ok(fold_ft(data, FoldOp::kSum, -1, {}), "allreduce_sum");
}
void Comm::allreduce_min(std::span<double> data) {
  require_ok(fold_ft(data, FoldOp::kMin, -1, {}), "allreduce_min");
}
void Comm::allreduce_max(std::span<double> data) {
  require_ok(fold_ft(data, FoldOp::kMax, -1, {}), "allreduce_max");
}
void Comm::reduce_sum(std::span<double> data, int root) {
  require_ok(fold_ft(data, FoldOp::kSum, root, {}), "reduce_sum");
}

CollectiveStatus Comm::allreduce_sum_ft(std::span<double> data,
                                        std::span<const ProxyPub> proxies) {
  return fold_ft(data, FoldOp::kSum, -1, proxies);
}
CollectiveStatus Comm::allreduce_min_ft(std::span<double> data,
                                        std::span<const ProxyPub> proxies) {
  return fold_ft(data, FoldOp::kMin, -1, proxies);
}
CollectiveStatus Comm::allreduce_max_ft(std::span<double> data,
                                        std::span<const ProxyPub> proxies) {
  return fold_ft(data, FoldOp::kMax, -1, proxies);
}
CollectiveStatus Comm::reduce_sum_ft(std::span<double> data, int root,
                                     std::span<const ProxyPub> proxies) {
  return fold_ft(data, FoldOp::kSum, root, proxies);
}

// root < 0 means allreduce (every rank folds and keeps the result).
CollectiveStatus Comm::fold_ft(std::span<double> data, FoldOp op, int root,
                               std::span<const ProxyPub> proxies) {
  SharedState& s = *shared_;
  const obs::CollKind kind =
      root < 0 ? obs::CollKind::kAllreduce : obs::CollKind::kReduce;
  const std::uint64_t seq = enter_collective(data.data(), proxies, kind);
  s.sync.arrive_and_wait();
  CollectiveStatus st = scan_dead(seq);
  if (!st.missing.empty() || (root >= 0 && s.is_dead(root))) {
    abort_collective(st, seq, kind);
    s.sync.arrive_and_wait();  // everyone agrees on the abort before retrying
    return st;
  }
  retry_streak_ = 0;
  // Every folding rank walks the slots in strict rank order (including its
  // own / proxied slots), so FP sums are deterministic AND identical on all
  // ranks — and a retry with proxies folds the exact same sequence as the
  // fault-free run. min/max are order-independent anyway.
  const bool folds = root < 0 || rank_ == root;
  std::vector<double> total;
  if (folds) {
    total.assign(data.size(), op == FoldOp::kSum ? 0.0
                              : op == FoldOp::kMin
                                  ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity());
    std::vector<std::byte> scratch;
    for (int r = 0; r < s.ranks; ++r) {
      const auto* src = static_cast<const double*>(
          integrity_fetch(s.publish[static_cast<std::size_t>(r)].ptr,
                          data.size_bytes(), r, seq, scratch));
      for (std::size_t i = 0; i < data.size(); ++i) {
        switch (op) {
          case FoldOp::kSum: total[i] += src[i]; break;
          case FoldOp::kMin: total[i] = std::min(total[i], src[i]); break;
          case FoldOp::kMax: total[i] = std::max(total[i], src[i]); break;
        }
      }
    }
  }
  s.sync.arrive_and_wait();  // everyone done reading
  if (folds) std::memcpy(data.data(), total.data(), data.size_bytes());
  s.sync.arrive_and_wait();  // publish slots free for reuse
  double cost;
  if (root < 0) {
    cost = s.cost.allreduce(data.size_bytes());
    bytes_sent_ += data.size_bytes();
  } else {
    cost = s.cost.reduce(data.size_bytes());
    if (rank_ != root) bytes_sent_ += data.size_bytes();
  }
  charge(cost);
  obs::emit(obs::EventKind::kCollectiveExit, seq, data.size_bytes(),
            static_cast<std::uint8_t>(kind));
  obs::add_collective(rank_, kind, data.size_bytes(), cost);
  return st;
}

CollectiveStatus Comm::bcast_bytes_ft(void* data, std::size_t bytes, int root,
                                      std::span<const ProxyPub> proxies) {
  SharedState& s = *shared_;
  const std::uint64_t seq = enter_collective(data, proxies, obs::CollKind::kBcast);
  s.sync.arrive_and_wait();
  CollectiveStatus st = scan_dead(seq);
  // Only the root's slot carries payload; dead non-roots don't block a bcast.
  if (s.publish[static_cast<std::size_t>(root)].seq != seq) {
    abort_collective(st, seq, obs::CollKind::kBcast);
    s.sync.arrive_and_wait();
    return st;
  }
  retry_streak_ = 0;
  if (rank_ != root) {
    std::vector<std::byte> scratch;
    std::memcpy(data,
                integrity_fetch(s.publish[static_cast<std::size_t>(root)].ptr,
                                bytes, root, seq, scratch),
                bytes);
  }
  s.sync.arrive_and_wait();
  const double cost = s.cost.bcast(bytes);
  charge(cost);
  if (rank_ == root) bytes_sent_ += bytes;
  obs::emit(obs::EventKind::kCollectiveExit, seq, bytes,
            static_cast<std::uint8_t>(obs::CollKind::kBcast));
  obs::add_collective(rank_, obs::CollKind::kBcast, bytes, cost);
  return st;
}

CollectiveStatus Comm::allgatherv_bytes_ft(const void* send, void* recv,
                                           std::size_t elem_size,
                                           std::span<const int> counts,
                                           std::span<const int> displs,
                                           std::span<const ProxyPub> proxies) {
  SharedState& s = *shared_;
  const std::uint64_t seq =
      enter_collective(send, proxies, obs::CollKind::kAllgatherv);
  s.sync.arrive_and_wait();
  CollectiveStatus st = scan_dead(seq);
  if (!st.missing.empty()) {
    abort_collective(st, seq, obs::CollKind::kAllgatherv);
    s.sync.arrive_and_wait();
    return st;
  }
  retry_streak_ = 0;
  std::size_t total_bytes = 0;
  std::vector<std::byte> scratch;
  for (int r = 0; r < s.ranks; ++r) {
    const std::size_t rb = static_cast<std::size_t>(counts[r]) * elem_size;
    auto* dst = static_cast<std::byte*>(recv) +
                static_cast<std::size_t>(displs[r]) * elem_size;
    // In-place gather: a rank's own slice may alias recv exactly. Skip the
    // self-copy then — besides being a no-op, writing those bytes would race
    // with peers concurrently reading them through the publish slot.
    const void* src = integrity_fetch(s.publish[static_cast<std::size_t>(r)].ptr,
                                      rb, r, seq, scratch);
    if (dst != src) std::memmove(dst, src, rb);
    total_bytes += rb;
  }
  s.sync.arrive_and_wait();
  const double cost = s.cost.allgatherv(total_bytes);
  charge(cost);
  bytes_sent_ += static_cast<std::size_t>(counts[rank_]) * elem_size;
  obs::emit(obs::EventKind::kCollectiveExit, seq, total_bytes,
            static_cast<std::uint8_t>(obs::CollKind::kAllgatherv));
  obs::add_collective(rank_, obs::CollKind::kAllgatherv, total_bytes, cost);
  return st;
}

void Comm::charge_rpc(int peer, std::size_t bytes) {
  SharedState& s = *shared_;
  charge(2.0 * s.cost.p2p(rank_, peer, bytes));  // request + response
  bytes_sent_ += bytes;
}

void Comm::steal_rpc(int victim, std::uint64_t remaining, std::uint64_t granted,
                     std::size_t request_bytes, std::size_t grant_bytes) {
  SharedState& s = *shared_;
  obs::emit(obs::EventKind::kStealRequest, static_cast<std::uint64_t>(victim),
            remaining);
  charge(s.cost.p2p(rank_, victim, request_bytes));
  bytes_sent_ += request_bytes;
  // The grant leg travels victim -> thief but the thief models the round
  // trip, keeping the exchange outside the victim's accounting (and its
  // logical clocks) entirely.
  charge(s.cost.p2p(victim, rank_, grant_bytes));
  obs::emit(obs::EventKind::kStealGrant, static_cast<std::uint64_t>(victim),
            granted);
  if (granted > 0) obs::add_steal_success();
  obs::add_steal_attempt();
}

void Comm::charge_collective(obs::CollKind kind, std::size_t bytes) {
  SharedState& s = *shared_;
  double cost = 0.0;
  switch (kind) {
    case obs::CollKind::kBarrier: cost = s.cost.barrier(); break;
    case obs::CollKind::kAllreduce: cost = s.cost.allreduce(bytes); break;
    case obs::CollKind::kReduce: cost = s.cost.reduce(bytes); break;
    case obs::CollKind::kBcast: cost = s.cost.bcast(bytes); break;
    case obs::CollKind::kAllgatherv: cost = s.cost.allgatherv(bytes); break;
    case obs::CollKind::kCount: break;
  }
  charge(cost);
  bytes_sent_ += bytes;
  obs::add_collective(rank_, kind, bytes, cost);
}

void Comm::send_bytes(const void* data, std::size_t bytes, int dst, int tag) {
  SharedState& s = *shared_;
  const std::uint64_t seq = send_seq_[static_cast<std::size_t>(dst)]++;
  charge(s.cost.p2p(rank_, dst, bytes));
  bytes_sent_ += bytes;
  obs::emit(obs::EventKind::kSend, static_cast<std::uint64_t>(dst), bytes);
  if (s.is_dead(dst)) return;  // wire time is spent; nobody is listening
  Mailbox& mb = *s.mailboxes[static_cast<std::size_t>(dst)];
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.suppressed = s.faults.dropped_copies(rank_, dst, seq);
  msg.delay_seconds = s.faults.delay_seconds(rank_, dst, seq);
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);
  if (!s.corruption.empty()) {
    // Integrity framing: block checksums of the pristine payload travel
    // with the message. Only armed when a corruption schedule exists — a
    // clean run keeps the original zero-overhead framing.
    msg.checksum = support::block_checksum(msg.payload.data(), bytes);
    std::uint64_t bit = 0;
    if (bytes > 0 && s.corruption.message_bit(rank_, dst, seq, &bit)) {
      msg.pristine = msg.payload;  // what the modeled retransmit delivers
      support::flip_bit(msg.payload.data(), bytes, bit);
      ++corruption_injected_;
      obs::add_corruption_injected(rank_);
      obs::emit(obs::EventKind::kCorruptionInject,
                static_cast<std::uint64_t>(dst), bytes, kSiteMessage);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

RecvStatus Comm::recv_bytes_ft(void* data, std::size_t bytes, int src, int tag) {
  SharedState& s = *shared_;
  Mailbox& mb = *s.mailboxes[static_cast<std::size_t>(rank_)];
  const double watchdog = s.recv_watchdog_seconds;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(watchdog > 0.0 ? watchdog : 0.0));
  std::unique_lock<std::mutex> lock(mb.mutex);
  for (;;) {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->src != src || it->tag != tag) continue;
      if (it->payload.size() != bytes) {
        // Size mismatch is a programming error in the caller.
        std::terminate();
      }
      // Injected drops: the first `suppressed` copies were lost on the wire.
      // Each lost copy is a logical retransmit round — a timeout window plus
      // a fresh transmission — charged here, where the waiting happens.
      for (int attempt = 0; it->suppressed > 0; --it->suppressed, ++attempt) {
        ++retries_;
        charge(s.cost.backoff(attempt) + s.cost.p2p(src, rank_, bytes));
        obs::emit(obs::EventKind::kRetransmit, static_cast<std::uint64_t>(src),
                  static_cast<std::uint64_t>(attempt));
        obs::add_retransmit(rank_);
      }
      if (!it->checksum.blocks.empty() && s.integrity_guards &&
          !support::diff_blocks(it->checksum, it->payload.data(), bytes)
               .empty()) {
        // Silent wire corruption: the framing checksums disagree with the
        // delivered bytes. Recovery is one modeled retransmit round (backoff
        // window + a fresh transmission), after which the pristine copy
        // arrives — the sender's buffer was never wrong.
        ++corruption_detected_;
        ++corruption_retransmits_;
        ++retries_;
        charge(s.cost.backoff(0) + s.cost.p2p(src, rank_, bytes));
        obs::add_corruption_detected(rank_);
        obs::add_corruption_retransmit(rank_);
        obs::emit(obs::EventKind::kCorruptionDetect,
                  static_cast<std::uint64_t>(src), bytes, kSiteMessage);
        obs::emit(obs::EventKind::kCorruptionRetransmit,
                  static_cast<std::uint64_t>(src), bytes, kSiteMessage);
        it->payload = std::move(it->pristine);
      }
      std::memcpy(data, it->payload.data(), bytes);
      charge(s.cost.p2p(src, rank_, bytes) + it->delay_seconds);
      mb.queue.erase(it);
      obs::emit(obs::EventKind::kRecv, static_cast<std::uint64_t>(src), bytes);
      return {};
    }
    // Messages queued before the peer died are still deliverable (checked
    // above); an empty match from a dead peer never arrives.
    if (s.is_dead(src)) return {CommError::kPeerDead};
    if (watchdog > 0.0) {
      if (mb.cv.wait_until(lock, deadline) == std::cv_status::timeout)
        return {CommError::kTimeout};
    } else {
      mb.cv.wait(lock);
    }
  }
}

}  // namespace gbpol::mpisim
