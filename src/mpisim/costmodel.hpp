// Analytic communication-cost model.
//
// Charges each operation the time a real MPI implementation on the modeled
// cluster would take, using the same t_s / t_w formulation the paper's own
// complexity analysis uses (§IV-C, citing Grama et al. Table 4.1):
//
//   p2p(m)        = t_s + t_w * m
//   barrier       = t_s * ceil(log2 P)
//   bcast(m)      = (t_s + t_w * m) * ceil(log2 P)
//   reduce(m)     = (t_s + t_w * m) * ceil(log2 P)
//   allreduce(m)  = t_s * ceil(log2 P) + 2 * t_w * m * (P-1)/P   (Rabenseifner)
//   allgatherv(M) = t_s * ceil(log2 P) + t_w * M * (P-1)/P       (ring; M = total bytes)
//
// t_s / t_w are taken from the worst link class the participating ranks
// span, which is what makes 12 single-thread ranks per node cost more than
// 2 ranks x 6 threads (the paper's hybrid-vs-pure-MPI argument).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mpisim/cluster.hpp"

namespace gbpol::mpisim {

// Per-item compute-cost estimate for the load balancer: item i carrying
// `item_points[i]` points interacting with `other_points` counterparts costs
//   cost_i = per_item + per_interaction * item_points[i] * other_points.
// The absolute scale is irrelevant — only the ratios steer the partitioner —
// so the defaults just weight interactions far above fixed per-item overhead.
struct WorkCostParams {
  double per_item = 1.0;
  double per_interaction = 1.0;
};

std::vector<double> interaction_costs(std::span<const std::uint32_t> item_points,
                                      std::size_t other_points,
                                      const WorkCostParams& params = {});

// Measured variant: the caller has already counted the exact work units item
// i will execute (e.g. near-field point pairs plus far-side aggregated
// evaluations from a built interaction list), so
//   cost_i = per_item + per_interaction * interactions[i].
// Occupancy x total is a fine first cut, but it prices a leaf the same
// whether its neighbourhood is dense or empty; list-derived counts capture
// the quadratic near-field term the balancer actually needs to equalize.
std::vector<double> interaction_costs(std::span<const std::uint64_t> interactions,
                                      const WorkCostParams& params = {});

class CostModel {
 public:
  CostModel(const ClusterModel& cluster, const RankMap& map)
      : cluster_(cluster), map_(map) {}

  double p2p(int src, int dst, std::size_t bytes) const;
  double barrier() const;
  double bcast(std::size_t bytes) const;
  double reduce(std::size_t bytes) const;
  double allreduce(std::size_t bytes) const;
  // total_bytes = sum of all ranks' contributions.
  double allgatherv(std::size_t total_bytes) const;
  // Modeled retransmit-timeout window before the (attempt+1)-th retry of a
  // failed delivery / aborted collective: exponential backoff in units of
  // the worst-link latency, capped so injected drop storms cannot produce
  // absurd makespans. Used by the fault-injection layer (mpisim/faults.hpp).
  double backoff(int attempt) const;

 private:
  double ts() const { return cluster_.latency(map_.worst_link()); }
  double tw() const { return cluster_.per_byte(map_.worst_link()); }
  static double log2_ceil(int p);

  ClusterModel cluster_;
  RankMap map_;
};

}  // namespace gbpol::mpisim
