// Internal shared state of one Runtime launch. Not part of the public API.
#pragma once

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "mpisim/cluster.hpp"
#include "mpisim/costmodel.hpp"
#include "mpisim/faults.hpp"
#include "support/checksum.hpp"

namespace gbpol::mpisim {

struct Message {
  int src = 0;
  int tag = 0;
  // Fault injection: the receiver must observe `suppressed` retransmit
  // rounds (charging modeled backoff) before this copy is delivered, plus
  // `delay_seconds` of modeled lateness. Both are stamped at send time from
  // the link's logical send sequence number, so replays are bit-identical.
  int suppressed = 0;
  double delay_seconds = 0.0;
  std::vector<std::byte> payload;
  // Integrity framing: block checksums of the PRISTINE payload, computed by
  // the sender before any scheduled corruption flips `payload` in flight.
  // When a flip was injected, `pristine` holds the clean bytes the modeled
  // retransmit delivers after the receiver detects the mismatch (empty
  // otherwise — the common case carries no extra copy).
  support::BlockChecksum checksum;
  std::vector<std::byte> pristine;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

// One publication slot per rank. `seq` stamps which collective the pointer
// belongs to: a slot whose seq doesn't match the current collective sequence
// is stale (its owner died, or its proxy died before republishing) and must
// not be read. Slots are only written between a collective's entry and its
// first barrier, and only read between the first and second barriers, so no
// per-slot synchronization is needed.
struct PublishSlot {
  const void* ptr = nullptr;
  std::uint64_t seq = std::numeric_limits<std::uint64_t>::max();
};

struct SharedState {
  SharedState(const ClusterModel& cluster_model, int ranks, int threads_per_rank,
              const FaultPlan& plan, double recv_watchdog_seconds,
              const KillPlan& kill_plan = {},
              const CorruptionPlan& corruption_plan = {},
              bool integrity_guards_on = true)
      : ranks(ranks),
        map(cluster_model, ranks, threads_per_rank),
        cost(cluster_model, map),
        faults(plan, ranks),
        corruption(corruption_plan, ranks),
        integrity_guards(integrity_guards_on),
        kill(kill_plan),
        recv_watchdog_seconds(recv_watchdog_seconds),
        sync(ranks),
        publish(static_cast<std::size_t>(ranks)),
        dead(static_cast<std::size_t>(ranks)),
        heartbeat(static_cast<std::size_t>(ranks)),
        stall_break(static_cast<std::size_t>(ranks)),
        in_stall(static_cast<std::size_t>(ranks)),
        mailboxes(static_cast<std::size_t>(ranks)) {
    for (auto& mb : mailboxes) mb = std::make_unique<Mailbox>();
  }

  // Wakes every rank blocked in recv so it can re-check peer liveness.
  void wake_all_mailboxes() {
    for (auto& mb : mailboxes) {
      // Pairing the notify with the lock keeps the wake ordered after the
      // dead-flag store for sleepers between their liveness check and wait.
      std::lock_guard<std::mutex> lock(mb->mutex);
      mb->cv.notify_all();
    }
  }

  bool is_dead(int r) const {
    return dead[static_cast<std::size_t>(r)].load(std::memory_order_acquire);
  }

  int ranks;
  RankMap map;
  CostModel cost;
  FaultSchedule faults;
  // Silent-corruption schedule plus the guard master switch. Guards ON is
  // the production configuration (checksum + detect + recover); OFF exists
  // so the canary tests can prove an unguarded run silently goes wrong.
  CorruptionSchedule corruption;
  bool integrity_guards = true;
  KillPlan kill;
  double recv_watchdog_seconds;
  std::barrier<> sync;
  // Collectives are globally ordered, so one slot array suffices.
  std::vector<PublishSlot> publish;
  // Set (once, never cleared) by a rank dying at a collective entry; read by
  // survivors after the next barrier, which orders the store before the scan.
  std::vector<std::atomic<bool>> dead;
  // Raised by the KillPlan trigger rank (or an external supervisor); every
  // rank observing it abandons via the death path at its next poll or
  // collective entry. Once set, it is never cleared.
  std::atomic<bool> kill_all{false};
  // Per-rank logical progress clocks, bumped at every collective entry and
  // every poll point. The supervisor watchdog samples these; a rank whose
  // clock stops advancing while peers move on is presumed stalled.
  std::vector<std::atomic<std::uint64_t>> heartbeat;
  // Stall actuation: an injected-stall rank parks on stall_cv holding its
  // in_stall flag; the supervisor converts it by setting its stall_break
  // flag and notifying. Ranks that merely wait at barriers ignore both.
  std::mutex stall_mutex;
  std::condition_variable stall_cv;
  std::vector<std::atomic<bool>> stall_break;
  std::vector<std::atomic<bool>> in_stall;
  std::atomic<int> stalls_converted{0};
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
};

}  // namespace gbpol::mpisim
