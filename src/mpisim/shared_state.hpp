// Internal shared state of one Runtime launch. Not part of the public API.
#pragma once

#include <barrier>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "mpisim/cluster.hpp"
#include "mpisim/costmodel.hpp"

namespace gbpol::mpisim {

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct SharedState {
  SharedState(const ClusterModel& cluster_model, int ranks, int threads_per_rank)
      : ranks(ranks),
        map(cluster_model, ranks, threads_per_rank),
        cost(cluster_model, map),
        sync(ranks),
        publish(static_cast<std::size_t>(ranks), nullptr),
        mailboxes(static_cast<std::size_t>(ranks)) {
    for (auto& mb : mailboxes) mb = std::make_unique<Mailbox>();
  }

  int ranks;
  RankMap map;
  CostModel cost;
  std::barrier<> sync;
  // One pointer slot per rank; valid between the two barriers bracketing a
  // collective. Collectives are globally ordered, so one slot array suffices.
  std::vector<const void*> publish;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
};

}  // namespace gbpol::mpisim
