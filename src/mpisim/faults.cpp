#include "mpisim/faults.hpp"

#include <algorithm>
#include <limits>

#include "support/rng.hpp"

namespace gbpol::mpisim {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

std::uint64_t link_key(int src, int dst, int ranks) {
  return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(ranks) +
         static_cast<std::uint64_t>(dst);
}

}  // namespace

FaultPlan FaultPlan::random(std::uint64_t seed, int ranks,
                            const RandomProfile& profile) {
  FaultPlan plan;
  if (ranks <= 0) return plan;
  Rng rng(seed ^ 0xfa017510ca5e5ULL);

  const auto pick_rank = [&] { return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks))); };

  const int n_delays = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(profile.max_delays) + 1));
  for (int i = 0; i < n_delays; ++i) {
    Delay d;
    d.src = pick_rank();
    d.dst = pick_rank();
    if (d.src == d.dst) d.dst = (d.dst + 1) % ranks;
    d.send_seq = rng.next_below(std::max<std::uint64_t>(1, profile.send_seq_horizon));
    d.extra_seconds = rng.uniform(0.1, 1.0) * profile.max_delay_seconds;
    if (d.src != d.dst) plan.delays.push_back(d);
  }

  const int n_drops = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(profile.max_drops) + 1));
  for (int i = 0; i < n_drops; ++i) {
    Drop d;
    d.src = pick_rank();
    d.dst = pick_rank();
    if (d.src == d.dst) d.dst = (d.dst + 1) % ranks;
    d.send_seq = rng.next_below(std::max<std::uint64_t>(1, profile.send_seq_horizon));
    d.lost_copies = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(std::max(1, profile.max_lost_copies))));
    if (d.src != d.dst) plan.drops.push_back(d);
  }

  const int n_stragglers = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(profile.max_stragglers) + 1));
  for (int i = 0; i < n_stragglers; ++i) {
    Straggler s;
    s.rank = pick_rank();
    s.slowdown_factor = rng.uniform(1.25, std::max(1.25, profile.max_slowdown));
    plan.stragglers.push_back(s);
  }

  // Deaths need survivors to recover onto: never kill the whole job, and a
  // 1-rank job has nobody to take over, so it stays immortal.
  const int death_cap = std::min(profile.max_deaths, ranks - 1);
  if (death_cap > 0) {
    const int n_deaths =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(death_cap) + 1));
    std::vector<int> doomed;
    for (int i = 0; i < n_deaths; ++i) {
      const int victim = pick_rank();
      if (std::find(doomed.begin(), doomed.end(), victim) != doomed.end()) continue;
      doomed.push_back(victim);
      Death d;
      d.rank = victim;
      d.collective_seq =
          rng.next_below(std::max<std::uint64_t>(1, profile.collective_horizon));
      plan.deaths.push_back(d);
    }
  }
  return plan;
}

FaultSchedule::FaultSchedule(const FaultPlan& plan, int ranks)
    : ranks_(std::max(1, ranks)),
      slowdown_(static_cast<std::size_t>(ranks_), 1.0),
      death_seq_(static_cast<std::size_t>(ranks_), kNever),
      stall_seq_(static_cast<std::size_t>(ranks_), kNever) {
  const auto in_range = [&](int r) { return r >= 0 && r < ranks_; };

  for (const FaultPlan::Delay& d : plan.delays) {
    if (!in_range(d.src) || !in_range(d.dst) || d.extra_seconds <= 0.0) continue;
    delays_.push_back({link_key(d.src, d.dst, ranks_), d.send_seq, d.extra_seconds, 0});
  }
  for (const FaultPlan::Drop& d : plan.drops) {
    if (!in_range(d.src) || !in_range(d.dst) || d.lost_copies <= 0) continue;
    drops_.push_back({link_key(d.src, d.dst, ranks_), d.send_seq, 0.0, d.lost_copies});
  }
  const auto by_coord = [](const LinkEvent& a, const LinkEvent& b) {
    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
  };
  std::sort(delays_.begin(), delays_.end(), by_coord);
  std::sort(drops_.begin(), drops_.end(), by_coord);

  for (const FaultPlan::Straggler& s : plan.stragglers) {
    if (!in_range(s.rank)) continue;
    slowdown_[static_cast<std::size_t>(s.rank)] =
        std::max(slowdown_[static_cast<std::size_t>(s.rank)],
                 std::max(1.0, s.slowdown_factor));
  }
  for (const FaultPlan::Death& d : plan.deaths) {
    if (!in_range(d.rank)) continue;
    death_seq_[static_cast<std::size_t>(d.rank)] =
        std::min(death_seq_[static_cast<std::size_t>(d.rank)], d.collective_seq);
    has_deaths_ = true;
  }
  for (const FaultPlan::Stall& s : plan.stalls) {
    if (!in_range(s.rank)) continue;
    stall_seq_[static_cast<std::size_t>(s.rank)] =
        std::min(stall_seq_[static_cast<std::size_t>(s.rank)], s.collective_seq);
  }
}

const FaultSchedule::LinkEvent* FaultSchedule::find(
    const std::vector<LinkEvent>& events, int src, int dst, std::uint64_t seq) const {
  if (events.empty() || src < 0 || src >= ranks_ || dst < 0 || dst >= ranks_)
    return nullptr;
  LinkEvent probe;
  probe.key = link_key(src, dst, ranks_);
  probe.seq = seq;
  const auto it = std::lower_bound(
      events.begin(), events.end(), probe, [](const LinkEvent& a, const LinkEvent& b) {
        return a.key != b.key ? a.key < b.key : a.seq < b.seq;
      });
  if (it == events.end() || it->key != probe.key || it->seq != seq) return nullptr;
  return &*it;
}

double FaultSchedule::delay_seconds(int src, int dst, std::uint64_t send_seq) const {
  const LinkEvent* e = find(delays_, src, dst, send_seq);
  return e ? e->delay : 0.0;
}

int FaultSchedule::dropped_copies(int src, int dst, std::uint64_t send_seq) const {
  const LinkEvent* e = find(drops_, src, dst, send_seq);
  return e ? e->lost : 0;
}

double FaultSchedule::slowdown(int rank) const {
  if (rank < 0 || rank >= ranks_) return 1.0;
  return slowdown_[static_cast<std::size_t>(rank)];
}

bool FaultSchedule::dies_at(int rank, std::uint64_t collective_seq) const {
  if (rank < 0 || rank >= ranks_) return false;
  return death_seq_[static_cast<std::size_t>(rank)] == collective_seq;
}

bool FaultSchedule::stalls_at(int rank, std::uint64_t collective_seq) const {
  if (rank < 0 || rank >= ranks_) return false;
  return stall_seq_[static_cast<std::size_t>(rank)] == collective_seq;
}

CorruptionPlan CorruptionPlan::random(std::uint64_t seed, int ranks,
                                      const RandomProfile& profile) {
  CorruptionPlan plan;
  if (ranks <= 0) return plan;
  // Distinct stream constant from FaultPlan::random so the same seed can
  // drive both generators without correlated draws.
  Rng rng(seed ^ 0x51dc0441b17ULL);

  const auto pick_rank = [&] {
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
  };
  const auto pick_bit = [&] { return rng.next_below(std::uint64_t(1) << 20); };

  const int n_messages = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(profile.max_messages) + 1));
  for (int i = 0; i < n_messages; ++i) {
    Message m;
    m.src = pick_rank();
    m.dst = pick_rank();
    if (m.src == m.dst) m.dst = (m.dst + 1) % ranks;
    m.send_seq = rng.next_below(std::max<std::uint64_t>(1, profile.send_seq_horizon));
    m.bit = pick_bit();
    if (m.src != m.dst) plan.messages.push_back(m);
  }

  const int n_collectives = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(profile.max_collectives) + 1));
  for (int i = 0; i < n_collectives; ++i) {
    Collective c;
    c.src = pick_rank();
    c.dst = pick_rank();
    if (c.src == c.dst) c.dst = (c.dst + 1) % ranks;
    c.collective_seq =
        rng.next_below(std::max<std::uint64_t>(1, profile.collective_horizon));
    c.bit = pick_bit();
    if (c.src != c.dst) plan.collectives.push_back(c);
  }

  const int n_hot = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(profile.max_hot_arrays) + 1));
  for (int i = 0; i < n_hot; ++i) {
    HotArray h;
    h.rank = pick_rank();
    h.phase = static_cast<std::uint32_t>(rng.next_below(2));
    h.chunk = static_cast<std::uint32_t>(
        rng.next_below(std::max<std::uint64_t>(1, profile.chunk_horizon)));
    h.bit = pick_bit();
    plan.hot_arrays.push_back(h);
  }

  const int n_snaps = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(std::max(0, profile.max_snapshots)) + 1));
  for (int i = 0; i < n_snaps; ++i) {
    SnapshotBytes s;
    s.rank = pick_rank();
    s.ordinal =
        rng.next_below(std::max<std::uint64_t>(1, profile.snapshot_horizon));
    s.bit = pick_bit();
    plan.snapshots.push_back(s);
  }
  return plan;
}

CorruptionSchedule::CorruptionSchedule(const CorruptionPlan& plan, int ranks)
    : ranks_(std::max(1, ranks)) {
  const auto in_range = [&](int r) { return r >= 0 && r < ranks_; };
  constexpr std::uint64_t kPhases = 2;  // kBornPartials / kEpolPartials

  for (const CorruptionPlan::Message& m : plan.messages) {
    if (!in_range(m.src) || !in_range(m.dst) || m.src == m.dst) continue;
    messages_.push_back({link_key(m.src, m.dst, ranks_), m.send_seq, m.bit});
  }
  for (const CorruptionPlan::Collective& c : plan.collectives) {
    if (!in_range(c.src) || !in_range(c.dst) || c.src == c.dst) continue;
    collectives_.push_back(
        {link_key(c.src, c.dst, ranks_), c.collective_seq, c.bit});
  }
  for (const CorruptionPlan::HotArray& h : plan.hot_arrays) {
    if (!in_range(h.rank) || h.phase >= kPhases) continue;
    hot_arrays_.push_back({static_cast<std::uint64_t>(h.rank) * kPhases + h.phase,
                           h.chunk, h.bit});
  }
  for (const CorruptionPlan::SnapshotBytes& s : plan.snapshots) {
    if (!in_range(s.rank)) continue;
    snapshots_.push_back({static_cast<std::uint64_t>(s.rank), s.ordinal, s.bit});
  }

  const auto by_coord = [](const Event& a, const Event& b) {
    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
  };
  std::sort(messages_.begin(), messages_.end(), by_coord);
  std::sort(collectives_.begin(), collectives_.end(), by_coord);
  std::sort(hot_arrays_.begin(), hot_arrays_.end(), by_coord);
  std::sort(snapshots_.begin(), snapshots_.end(), by_coord);
  empty_ = messages_.empty() && collectives_.empty() && hot_arrays_.empty() &&
           snapshots_.empty();
}

bool CorruptionSchedule::find(const std::vector<Event>& events,
                              std::uint64_t key, std::uint64_t seq,
                              std::uint64_t* bit) {
  if (events.empty()) return false;
  Event probe;
  probe.key = key;
  probe.seq = seq;
  const auto it = std::lower_bound(
      events.begin(), events.end(), probe, [](const Event& a, const Event& b) {
        return a.key != b.key ? a.key < b.key : a.seq < b.seq;
      });
  if (it == events.end() || it->key != key || it->seq != seq) return false;
  if (bit != nullptr) *bit = it->bit;
  return true;
}

bool CorruptionSchedule::message_bit(int src, int dst, std::uint64_t send_seq,
                                     std::uint64_t* bit) const {
  if (src < 0 || src >= ranks_ || dst < 0 || dst >= ranks_) return false;
  return find(messages_, link_key(src, dst, ranks_), send_seq, bit);
}

bool CorruptionSchedule::collective_bit(int src, int dst,
                                        std::uint64_t collective_seq,
                                        std::uint64_t* bit) const {
  if (src < 0 || src >= ranks_ || dst < 0 || dst >= ranks_) return false;
  return find(collectives_, link_key(src, dst, ranks_), collective_seq, bit);
}

bool CorruptionSchedule::hot_array_bit(int rank, std::uint32_t phase,
                                       std::uint32_t chunk,
                                       std::uint64_t* bit) const {
  if (rank < 0 || rank >= ranks_ || phase >= 2) return false;
  return find(hot_arrays_, static_cast<std::uint64_t>(rank) * 2 + phase, chunk,
              bit);
}

bool CorruptionSchedule::snapshot_bit(int rank, std::uint64_t ordinal,
                                      std::uint64_t* bit) const {
  if (rank < 0 || rank >= ranks_) return false;
  return find(snapshots_, static_cast<std::uint64_t>(rank), ordinal, bit);
}

}  // namespace gbpol::mpisim
