#include "mpisim/faults.hpp"

#include <algorithm>
#include <limits>

#include "support/rng.hpp"

namespace gbpol::mpisim {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

std::uint64_t link_key(int src, int dst, int ranks) {
  return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(ranks) +
         static_cast<std::uint64_t>(dst);
}

}  // namespace

FaultPlan FaultPlan::random(std::uint64_t seed, int ranks,
                            const RandomProfile& profile) {
  FaultPlan plan;
  if (ranks <= 0) return plan;
  Rng rng(seed ^ 0xfa017510ca5e5ULL);

  const auto pick_rank = [&] { return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks))); };

  const int n_delays = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(profile.max_delays) + 1));
  for (int i = 0; i < n_delays; ++i) {
    Delay d;
    d.src = pick_rank();
    d.dst = pick_rank();
    if (d.src == d.dst) d.dst = (d.dst + 1) % ranks;
    d.send_seq = rng.next_below(std::max<std::uint64_t>(1, profile.send_seq_horizon));
    d.extra_seconds = rng.uniform(0.1, 1.0) * profile.max_delay_seconds;
    if (d.src != d.dst) plan.delays.push_back(d);
  }

  const int n_drops = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(profile.max_drops) + 1));
  for (int i = 0; i < n_drops; ++i) {
    Drop d;
    d.src = pick_rank();
    d.dst = pick_rank();
    if (d.src == d.dst) d.dst = (d.dst + 1) % ranks;
    d.send_seq = rng.next_below(std::max<std::uint64_t>(1, profile.send_seq_horizon));
    d.lost_copies = 1 + static_cast<int>(rng.next_below(
                            static_cast<std::uint64_t>(std::max(1, profile.max_lost_copies))));
    if (d.src != d.dst) plan.drops.push_back(d);
  }

  const int n_stragglers = static_cast<int>(
      rng.next_below(static_cast<std::uint64_t>(profile.max_stragglers) + 1));
  for (int i = 0; i < n_stragglers; ++i) {
    Straggler s;
    s.rank = pick_rank();
    s.slowdown_factor = rng.uniform(1.25, std::max(1.25, profile.max_slowdown));
    plan.stragglers.push_back(s);
  }

  // Deaths need survivors to recover onto: never kill the whole job, and a
  // 1-rank job has nobody to take over, so it stays immortal.
  const int death_cap = std::min(profile.max_deaths, ranks - 1);
  if (death_cap > 0) {
    const int n_deaths =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(death_cap) + 1));
    std::vector<int> doomed;
    for (int i = 0; i < n_deaths; ++i) {
      const int victim = pick_rank();
      if (std::find(doomed.begin(), doomed.end(), victim) != doomed.end()) continue;
      doomed.push_back(victim);
      Death d;
      d.rank = victim;
      d.collective_seq =
          rng.next_below(std::max<std::uint64_t>(1, profile.collective_horizon));
      plan.deaths.push_back(d);
    }
  }
  return plan;
}

FaultSchedule::FaultSchedule(const FaultPlan& plan, int ranks)
    : ranks_(std::max(1, ranks)),
      slowdown_(static_cast<std::size_t>(ranks_), 1.0),
      death_seq_(static_cast<std::size_t>(ranks_), kNever),
      stall_seq_(static_cast<std::size_t>(ranks_), kNever) {
  const auto in_range = [&](int r) { return r >= 0 && r < ranks_; };

  for (const FaultPlan::Delay& d : plan.delays) {
    if (!in_range(d.src) || !in_range(d.dst) || d.extra_seconds <= 0.0) continue;
    delays_.push_back({link_key(d.src, d.dst, ranks_), d.send_seq, d.extra_seconds, 0});
  }
  for (const FaultPlan::Drop& d : plan.drops) {
    if (!in_range(d.src) || !in_range(d.dst) || d.lost_copies <= 0) continue;
    drops_.push_back({link_key(d.src, d.dst, ranks_), d.send_seq, 0.0, d.lost_copies});
  }
  const auto by_coord = [](const LinkEvent& a, const LinkEvent& b) {
    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
  };
  std::sort(delays_.begin(), delays_.end(), by_coord);
  std::sort(drops_.begin(), drops_.end(), by_coord);

  for (const FaultPlan::Straggler& s : plan.stragglers) {
    if (!in_range(s.rank)) continue;
    slowdown_[static_cast<std::size_t>(s.rank)] =
        std::max(slowdown_[static_cast<std::size_t>(s.rank)],
                 std::max(1.0, s.slowdown_factor));
  }
  for (const FaultPlan::Death& d : plan.deaths) {
    if (!in_range(d.rank)) continue;
    death_seq_[static_cast<std::size_t>(d.rank)] =
        std::min(death_seq_[static_cast<std::size_t>(d.rank)], d.collective_seq);
    has_deaths_ = true;
  }
  for (const FaultPlan::Stall& s : plan.stalls) {
    if (!in_range(s.rank)) continue;
    stall_seq_[static_cast<std::size_t>(s.rank)] =
        std::min(stall_seq_[static_cast<std::size_t>(s.rank)], s.collective_seq);
  }
}

const FaultSchedule::LinkEvent* FaultSchedule::find(
    const std::vector<LinkEvent>& events, int src, int dst, std::uint64_t seq) const {
  if (events.empty() || src < 0 || src >= ranks_ || dst < 0 || dst >= ranks_)
    return nullptr;
  LinkEvent probe;
  probe.key = link_key(src, dst, ranks_);
  probe.seq = seq;
  const auto it = std::lower_bound(
      events.begin(), events.end(), probe, [](const LinkEvent& a, const LinkEvent& b) {
        return a.key != b.key ? a.key < b.key : a.seq < b.seq;
      });
  if (it == events.end() || it->key != probe.key || it->seq != seq) return nullptr;
  return &*it;
}

double FaultSchedule::delay_seconds(int src, int dst, std::uint64_t send_seq) const {
  const LinkEvent* e = find(delays_, src, dst, send_seq);
  return e ? e->delay : 0.0;
}

int FaultSchedule::dropped_copies(int src, int dst, std::uint64_t send_seq) const {
  const LinkEvent* e = find(drops_, src, dst, send_seq);
  return e ? e->lost : 0;
}

double FaultSchedule::slowdown(int rank) const {
  if (rank < 0 || rank >= ranks_) return 1.0;
  return slowdown_[static_cast<std::size_t>(rank)];
}

bool FaultSchedule::dies_at(int rank, std::uint64_t collective_seq) const {
  if (rank < 0 || rank >= ranks_) return false;
  return death_seq_[static_cast<std::size_t>(rank)] == collective_seq;
}

bool FaultSchedule::stalls_at(int rank, std::uint64_t collective_seq) const {
  if (rank < 0 || rank >= ranks_) return false;
  return stall_seq_[static_cast<std::size_t>(rank)] == collective_seq;
}

}  // namespace gbpol::mpisim
