// Deterministic fault injection for the in-process message-passing runtime.
//
// A FaultPlan is a *schedule*, not a probability: every fault fires at a
// logical event coordinate — the n-th send over a (src, dst) link, or a
// rank's n-th collective entry — never at a wall-clock time. Because the
// runtime's collectives are globally ordered and each rank's sends are
// program-ordered, the same plan replays bit-identically run after run,
// which is what lets the companion tests assert exact-energy equality
// between fault-free and fault-recovered executions.
//
// Fault classes (paper §IV-C models a fault-free Lonestar4; these model the
// deviations a production cluster service must survive):
//   * Delay      — the n-th message over a link arrives late by a modeled
//                  number of seconds (charged to the receiver's comm time).
//   * Drop       — the n-th message over a link loses its first k copies;
//                  the receiver times out k times, charging an exponential
//                  backoff plus a retransmit round per lost copy, then
//                  delivers. Counted in RunReport::retries.
//   * Straggler  — a rank's compute time is scaled by a factor >= 1; the
//                  modeled surplus is reported in the compute channel so
//                  makespans reflect it (RunReport accounting).
//   * Death      — a rank dies on entering its n-th collective: it drops
//                  out of the barrier group, never publishes again, and all
//                  later operations observe it as dead. Surviving ranks'
//                  collectives report the loss through a CommError status
//                  channel instead of deadlocking (comm.hpp).
//   * Stall      — a rank freezes (hung NIC, livelocked thread) on entering
//                  its n-th collective WITHOUT dying: it stops advancing its
//                  logical clocks but holds its barrier slot. Unsupervised,
//                  this hangs the job; the supervisor watchdog
//                  (runtime.hpp) detects the stagnant heartbeat and converts
//                  the stall into a death so the ordinary recovery path runs.
//
// Separately, KillPlan models a whole-PROCESS SIGKILL (driver killed,
// preemption) at a logical point, for checkpoint/restart testing: once the
// trigger rank reaches the scheduled (collective epoch, progress tick),
// every rank abandons at its next poll or collective entry and the run
// reports killed=true. Restart then resumes from the snapshot store.
#pragma once

#include <cstdint>
#include <vector>

namespace gbpol::mpisim {

struct FaultPlan {
  struct Delay {
    int src = 0;
    int dst = 0;
    std::uint64_t send_seq = 0;   // n-th send from src to dst, 0-based
    double extra_seconds = 0.0;   // modeled lateness
  };
  struct Drop {
    int src = 0;
    int dst = 0;
    std::uint64_t send_seq = 0;
    int lost_copies = 1;          // receiver retries this many times
  };
  struct Straggler {
    int rank = 0;
    double slowdown_factor = 1.0;  // >= 1; 2.0 doubles modeled compute time
  };
  struct Death {
    int rank = 0;
    std::uint64_t collective_seq = 0;  // dies entering this collective, 0-based
  };
  struct Stall {
    int rank = 0;
    std::uint64_t collective_seq = 0;  // freezes entering this collective
  };

  std::vector<Delay> delays;
  std::vector<Drop> drops;
  std::vector<Straggler> stragglers;
  std::vector<Death> deaths;
  std::vector<Stall> stalls;

  bool empty() const {
    return delays.empty() && drops.empty() && stragglers.empty() &&
           deaths.empty() && stalls.empty();
  }
  bool has_deaths() const { return !deaths.empty(); }
  bool has_stalls() const { return !stalls.empty(); }

  // Knobs for the seeded generator below. Event counts are drawn uniformly
  // in [0, max_*]; coordinates are drawn inside the given horizons.
  struct RandomProfile {
    int max_delays = 4;
    int max_drops = 4;
    int max_stragglers = 2;
    int max_deaths = 1;                  // clamped to ranks - 1 (one survivor min)
    std::uint64_t send_seq_horizon = 4;  // sends per link targeted
    std::uint64_t collective_horizon = 4;
    double max_delay_seconds = 1e-3;
    int max_lost_copies = 3;
    double max_slowdown = 4.0;
  };

  // Deterministic plan from a seed: same (seed, ranks, profile) -> same plan.
  static FaultPlan random(std::uint64_t seed, int ranks, const RandomProfile& profile);
};

// Deterministic whole-process kill (SIGKILL model) at a logical coordinate:
// fires when `rank` has completed `collective_seq` collectives and then
// reaches its `tick`-th progress poll (Comm::poll_kill, called by the
// drivers at checkpoint-chunk boundaries) within that epoch. The trigger
// rank raises a shared flag and abandons; every other rank abandons at its
// own next poll or collective entry. Like the fault plan, the coordinate is
// logical, so a kill schedule replays deterministically.
struct KillPlan {
  bool armed = false;
  int rank = 0;
  std::uint64_t collective_seq = 0;
  std::uint64_t tick = 1;  // 1-based poll count within the epoch
};

// Deterministic SILENT-corruption injection (DESIGN.md "Data integrity &
// silent corruption"): single-bit flips planted at logical coordinates, the
// same replayable clocks FaultPlan uses. Unlike faults, corruption raises no
// error by itself — the payload simply carries wrong bits — so every class
// here exists to exercise a matching checksum guard:
//   * Message    — the n-th send over a (src, dst) link is flipped in
//                  flight; the receiver's block-checksum framing must catch
//                  it and charge a modeled retransmit.
//   * Collective — the copy of `src`'s published collective payload read by
//                  `dst` at a collective seq is flipped; the reader's digest
//                  check must catch it and re-read the pristine slot.
//   * HotArray   — a sealed per-chunk partial (Born accumulator rows or the
//                  E_pol raw pair) is flipped in place after the executor
//                  seals its CRC; the phase-boundary verification must catch
//                  it and recompute the chunk fresh-from-zero (0 ulp).
//   * SnapshotBytes — a bit of the just-written checkpoint file is flipped;
//                  the ckpt CRC must reject the file on load and fall back
//                  to the newest clean set.
// `bit` is reduced modulo the target's bit count at injection time, so
// seeded plans need no knowledge of payload sizes.
struct CorruptionPlan {
  // Hot-array phase ids (the `phase` field of HotArray).
  static constexpr std::uint32_t kBornPartials = 0;
  static constexpr std::uint32_t kEpolPartials = 1;

  struct Message {
    int src = 0;
    int dst = 0;
    std::uint64_t send_seq = 0;  // n-th send from src to dst, 0-based
    std::uint64_t bit = 0;
  };
  struct Collective {
    int src = 0;                      // publisher whose payload is flipped
    int dst = 0;                      // reader that sees the flipped copy
    std::uint64_t collective_seq = 0; // dst's collective seq, 0-based
    std::uint64_t bit = 0;
  };
  struct HotArray {
    int rank = 0;                // executor whose sealed partial is flipped
    std::uint32_t phase = kBornPartials;
    std::uint32_t chunk = 0;     // canonical chunk id within the phase
    std::uint64_t bit = 0;
  };
  struct SnapshotBytes {
    int rank = 0;
    std::uint64_t ordinal = 0;   // n-th snapshot the rank saves, 0-based
    std::uint64_t bit = 0;       // flipped within the file body (past magic)
  };

  std::vector<Message> messages;
  std::vector<Collective> collectives;
  std::vector<HotArray> hot_arrays;
  std::vector<SnapshotBytes> snapshots;

  bool empty() const {
    return messages.empty() && collectives.empty() && hot_arrays.empty() &&
           snapshots.empty();
  }

  struct RandomProfile {
    int max_messages = 4;
    int max_collectives = 2;
    int max_hot_arrays = 2;
    int max_snapshots = 0;  // detection lands in the NEXT run; opt-in
    std::uint64_t send_seq_horizon = 4;
    std::uint64_t collective_horizon = 3;
    std::uint32_t chunk_horizon = 8;
    std::uint64_t snapshot_horizon = 2;
  };

  // Deterministic plan from a seed: same (seed, ranks, profile) -> same plan.
  static CorruptionPlan random(std::uint64_t seed, int ranks,
                               const RandomProfile& profile);
};

// Plan compiled into per-run lookup form. Built once at Runtime launch and
// shared read-only by every rank, so lookups need no locking.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  FaultSchedule(const FaultPlan& plan, int ranks);

  double delay_seconds(int src, int dst, std::uint64_t send_seq) const;
  int dropped_copies(int src, int dst, std::uint64_t send_seq) const;
  // Compute-time multiplier for `rank`, always >= 1.
  double slowdown(int rank) const;
  bool dies_at(int rank, std::uint64_t collective_seq) const;
  bool stalls_at(int rank, std::uint64_t collective_seq) const;
  bool has_deaths() const { return has_deaths_; }

 private:
  struct LinkEvent {
    std::uint64_t key = 0;  // (src * ranks + dst) * horizonless packing, see cpp
    std::uint64_t seq = 0;
    double delay = 0.0;
    int lost = 0;
  };

  const LinkEvent* find(const std::vector<LinkEvent>& events, int src, int dst,
                        std::uint64_t seq) const;

  int ranks_ = 0;
  bool has_deaths_ = false;
  std::vector<LinkEvent> delays_;          // sorted by (key, seq)
  std::vector<LinkEvent> drops_;           // sorted by (key, seq)
  std::vector<double> slowdown_;           // per rank, 1.0 = none
  std::vector<std::uint64_t> death_seq_;   // per rank, ~0 = immortal
  std::vector<std::uint64_t> stall_seq_;   // per rank, ~0 = never stalls
};

// CorruptionPlan compiled into sorted-coordinate lookup form, mirroring
// FaultSchedule. Each query returns whether a flip is scheduled at the
// coordinate and, if so, its bit position. Schedules are read-only after
// construction; the FIRING of an event (once per run) is tracked by the
// injecting site, not here.
class CorruptionSchedule {
 public:
  CorruptionSchedule() = default;
  CorruptionSchedule(const CorruptionPlan& plan, int ranks);

  bool empty() const { return empty_; }
  bool message_bit(int src, int dst, std::uint64_t send_seq,
                   std::uint64_t* bit) const;
  bool collective_bit(int src, int dst, std::uint64_t collective_seq,
                      std::uint64_t* bit) const;
  bool hot_array_bit(int rank, std::uint32_t phase, std::uint32_t chunk,
                     std::uint64_t* bit) const;
  bool snapshot_bit(int rank, std::uint64_t ordinal, std::uint64_t* bit) const;

 private:
  struct Event {
    std::uint64_t key = 0;
    std::uint64_t seq = 0;
    std::uint64_t bit = 0;
  };

  static bool find(const std::vector<Event>& events, std::uint64_t key,
                   std::uint64_t seq, std::uint64_t* bit);

  int ranks_ = 0;
  bool empty_ = true;
  std::vector<Event> messages_;     // key = link, seq = send_seq
  std::vector<Event> collectives_;  // key = link, seq = collective_seq
  std::vector<Event> hot_arrays_;   // key = rank * phases + phase, seq = chunk
  std::vector<Event> snapshots_;    // key = rank, seq = save ordinal
};

}  // namespace gbpol::mpisim
