// Plain-text molecule I/O in the "xyzqr" format used by implicit-solvent
// tools: one header line with the atom count, then one line per atom with
// `x y z charge radius`. Lets users run the library on real structures
// (e.g., converted from PQR files) instead of the synthetic suite.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "molecule/molecule.hpp"

namespace gbpol {

struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void write_xyzqr(const Molecule& mol, std::ostream& os);
void write_xyzqr_file(const Molecule& mol, const std::string& path);

// Throws IoError on malformed input.
Molecule read_xyzqr(std::istream& is, std::string name = "molecule");
Molecule read_xyzqr_file(const std::string& path);

// PQR (the format pdb2pqr emits; what implicit-solvent tools consume):
// `ATOM/HETATM serial name resName [chain] resSeq x y z charge radius`.
// Non-atom records are ignored; the optional chain column is handled by
// taking the trailing five numeric fields as x y z q r.
Molecule read_pqr(std::istream& is, std::string name = "molecule");
Molecule read_pqr_file(const std::string& path);
void write_pqr(const Molecule& mol, std::ostream& os);

}  // namespace gbpol
