#include "molecule/generate.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <unordered_set>
#include <vector>

#include "support/rng.hpp"

namespace gbpol::molgen {
namespace {

// Element palette with protein-like frequencies (H,C,N,O,S) and Bondi vdW
// radii. Cumulative frequencies are used for sampling.
struct Element {
  double cum_freq;
  double radius;
};
constexpr Element kElements[] = {
    {0.50, 1.20},  // H  ~50% of protein atoms
    {0.82, 1.70},  // C
    {0.90, 1.55},  // N
    {0.99, 1.52},  // O
    {1.00, 1.80},  // S
};

double sample_radius(Rng& rng) {
  const double u = rng.next_double();
  for (const Element& e : kElements)
    if (u <= e.cum_freq) return e.radius;
  return kElements[4].radius;
}

// Spatial hash over residue centers for the self-avoidance test.
struct CellHash {
  double cell;
  std::unordered_set<std::uint64_t> occupied;

  std::uint64_t key(const Vec3& p) const {
    auto q = [&](double v) {
      return static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(std::floor(v / cell)) & 0x1fffff);
    };
    return (q(p.x) << 42) | (q(p.y) << 21) | q(p.z);
  }
  bool try_insert(const Vec3& p) { return occupied.insert(key(p)).second; }
};

constexpr std::size_t kAtomsPerResidue = 8;
constexpr double kCaStep = 3.8;  // Calpha-Calpha distance, Angstrom

// Places residue atoms around a backbone site and appends them. Charges are
// drawn as protein-like partial charges; the residue is then neutralized
// unless `residue_charge` is nonzero, in which case the net is shifted to it.
void emit_residue(Molecule& mol, const Vec3& center, double residue_charge,
                  std::size_t count, Rng& rng) {
  if (count == 0) return;
  std::vector<Atom> local(count);
  double net = 0.0;
  for (Atom& a : local) {
    // Atoms scatter within ~2.5 A of the backbone site.
    const Vec3 offset{rng.normal() * 1.4, rng.normal() * 1.4, rng.normal() * 1.4};
    a.pos = center + offset;
    a.radius = sample_radius(rng);
    a.charge = rng.normal() * 0.35;  // typical partial-charge spread
    net += a.charge;
  }
  const double shift = (residue_charge - net) / static_cast<double>(count);
  for (Atom& a : local) {
    a.charge += shift;
    mol.add_atom(a);
  }
}

}  // namespace

Molecule synthetic_protein(std::size_t n_atoms, std::uint64_t seed, const char* name) {
  Rng rng(seed);
  const std::size_t n_residues =
      std::max<std::size_t>(1, (n_atoms + kAtomsPerResidue - 1) / kAtomsPerResidue);

  // Confinement ball radius giving protein packing density; floor keeps tiny
  // molecules from degenerating to a point.
  const double volume = static_cast<double>(n_atoms) / kProteinAtomDensity;
  const double ball_r =
      std::max(6.0, std::cbrt(volume * 3.0 / (4.0 * std::numbers::pi)));

  Molecule mol(name != nullptr
                   ? std::string(name)
                   : "synthetic-protein-" + std::to_string(n_atoms),
               {});

  CellHash hash{kCaStep * 0.75, {}};
  Vec3 site{0, 0, 0};
  hash.try_insert(site);

  std::size_t emitted = 0;
  for (std::size_t res = 0; res < n_residues; ++res) {
    const std::size_t remaining = n_atoms - emitted;
    const std::size_t count = std::min(kAtomsPerResidue, remaining);
    // ~20% of residues carry a +/-1 formal charge (Asp/Glu/Lys/Arg-like).
    double formal = 0.0;
    const double u = rng.next_double();
    if (u < 0.10) formal = -1.0;
    else if (u < 0.20) formal = 1.0;
    emit_residue(mol, site, formal, count, rng);
    emitted += count;
    if (emitted >= n_atoms) break;

    // Self-avoiding confined step: retry random directions; fall back to a
    // fresh interior point if the walk gets stuck (keeps generation O(n)).
    bool placed = false;
    for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
      Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
      dir = normalized(dir);
      Vec3 next = site + dir * kCaStep;
      if (norm(next) > ball_r) next = next * (ball_r / norm(next)) - dir * kCaStep;
      if (hash.try_insert(next)) {
        site = next;
        placed = true;
      }
    }
    if (!placed) {
      for (int attempt = 0; attempt < 1024 && !placed; ++attempt) {
        Vec3 cand{rng.uniform(-ball_r, ball_r), rng.uniform(-ball_r, ball_r),
                  rng.uniform(-ball_r, ball_r)};
        if (norm(cand) <= ball_r && hash.try_insert(cand)) {
          site = cand;
          placed = true;
        }
      }
      // If even random placement failed the ball is saturated; reuse the
      // current site (slight local crowding is acceptable).
    }
  }
  return mol;
}

Molecule bound_complex(std::size_t n_atoms, std::uint64_t seed, const char* name) {
  const std::size_t ligand_atoms = std::max<std::size_t>(kAtomsPerResidue, n_atoms / 4);
  const std::size_t receptor_atoms = n_atoms - ligand_atoms;

  Molecule receptor = synthetic_protein(receptor_atoms, seed * 2 + 1);
  Molecule ligand = synthetic_protein(ligand_atoms, seed * 2 + 2);

  // Dock the ligand flush against the receptor surface along +x, with a
  // small (1.5 A) interfacial gap typical of bound complexes.
  const Aabb rb = receptor.bounding_box();
  const Aabb lb = ligand.bounding_box();
  const double dx = rb.hi.x - lb.lo.x + 1.5;
  ligand.translate(Vec3{dx, rb.center().y - lb.center().y, rb.center().z - lb.center().z});

  Molecule complex(name != nullptr ? std::string(name)
                                   : "bound-complex-" + std::to_string(n_atoms),
                   {});
  complex.append(receptor);
  complex.append(ligand);
  return complex;
}

Molecule virus_shell(std::size_t n_atoms, std::uint64_t seed, double thickness_frac,
                     const char* name) {
  Rng rng(seed);
  // Outer radius from shell volume at protein density:
  //   V = (4pi/3) (R^3 - r^3), r = (1 - t) R.
  const double volume = static_cast<double>(n_atoms) / kProteinAtomDensity;
  const double shape = 1.0 - std::pow(1.0 - thickness_frac, 3.0);
  const double outer_r =
      std::cbrt(volume * 3.0 / (4.0 * std::numbers::pi * shape));
  const double inner_r = (1.0 - thickness_frac) * outer_r;

  Molecule mol(name != nullptr ? std::string(name)
                               : "virus-shell-" + std::to_string(n_atoms),
               {});
  for (std::size_t i = 0; i < n_atoms; ++i) {
    // Uniform direction, radius sampled so density is uniform in the shell
    // (inverse-CDF of r^2 between inner_r and outer_r).
    Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    dir = normalized(dir);
    if (dir == Vec3{}) dir = {1, 0, 0};
    const double u = rng.next_double();
    const double r3 =
        inner_r * inner_r * inner_r +
        u * (outer_r * outer_r * outer_r - inner_r * inner_r * inner_r);
    Atom a;
    a.pos = dir * std::cbrt(r3);
    a.radius = sample_radius(rng);
    a.charge = rng.normal() * 0.3;
    mol.add_atom(a);
  }
  // Capsids are near-neutral overall: remove the mean charge.
  const double mean_q = mol.net_charge() / static_cast<double>(mol.size());
  for (Atom& a : mol.atoms()) a.charge -= mean_q;
  return mol;
}

}  // namespace gbpol::molgen
