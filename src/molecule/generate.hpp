// Deterministic synthetic molecule generators.
//
// The paper evaluates on the ZDock Benchmark 2.0 protein set plus two virus
// capsids (BTV, CMV shell); none of those structure files ship with this
// repository, so these generators produce structures with the properties the
// algorithms actually depend on: protein-like atom packing density, realistic
// vdW radius and partial-charge distributions, globular (protein) or hollow
// shell (capsid) geometry. See DESIGN.md for the substitution rationale.
#pragma once

#include <cstdint>

#include "molecule/molecule.hpp"

namespace gbpol::molgen {

// Mean atom number density of folded proteins, atoms per cubic Angstrom
// (protein mass density ~1.35 g/cm^3 at ~7.3 Da per atom).
inline constexpr double kProteinAtomDensity = 0.11;

// Globular synthetic protein of approximately `n_atoms` atoms built as a
// confined self-avoiding residue walk (Calpha step 3.8 A) with ~8 atoms per
// residue placed around each backbone site. Radii are drawn from the
// {H,C,N,O,S} vdW set with protein-like element frequencies; charges are
// protein-like partial charges, neutralized per residue except for a
// realistic fraction of +/-1 charged residues.
Molecule synthetic_protein(std::size_t n_atoms, std::uint64_t seed,
                           const char* name = nullptr);

// Bound two-chain complex (receptor + smaller ligand chain docked against
// it), mimicking the ZDock "bound" structures. The ligand holds roughly a
// quarter of the atoms.
Molecule bound_complex(std::size_t n_atoms, std::uint64_t seed,
                       const char* name = nullptr);

// Hollow spherical shell of atoms at protein density, mimicking a virus
// capsid (CMV shell / BTV substitutes). `thickness_frac` is the shell
// thickness as a fraction of the outer radius.
Molecule virus_shell(std::size_t n_atoms, std::uint64_t seed,
                     double thickness_frac = 0.25, const char* name = nullptr);

}  // namespace gbpol::molgen
