#include "molecule/suite.hpp"

#include <cmath>
#include <string>

#include "molecule/generate.hpp"

namespace gbpol::molgen {

std::vector<std::size_t> zdock_like_sizes(const SuiteSpec& spec) {
  std::vector<std::size_t> sizes;
  sizes.reserve(spec.count);
  if (spec.count == 1) {
    sizes.push_back(spec.min_atoms);
    return sizes;
  }
  const double ratio = static_cast<double>(spec.max_atoms) /
                       static_cast<double>(spec.min_atoms);
  for (std::size_t i = 0; i < spec.count; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(spec.count - 1);
    sizes.push_back(static_cast<std::size_t>(
        std::llround(static_cast<double>(spec.min_atoms) * std::pow(ratio, t))));
  }
  return sizes;
}

std::vector<Molecule> zdock_like_suite(const SuiteSpec& spec) {
  std::vector<Molecule> suite;
  suite.reserve(spec.count);
  const auto sizes = zdock_like_sizes(spec);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::string name = "zdock-" + std::to_string(i) + "-" + std::to_string(sizes[i]);
    suite.push_back(bound_complex(sizes[i], spec.seed + i, name.c_str()));
  }
  return suite;
}

// Default substitute sizes: large enough to show the asymptotic separation
// between octree and pairwise algorithms, small enough for single-core runs.
namespace {
constexpr std::size_t kCmvDefaultAtoms = 120000;
constexpr std::size_t kBtvDefaultAtoms = 240000;
}  // namespace

Molecule cmv_like(double scale, std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(kCmvDefaultAtoms * scale);
  return virus_shell(n, seed, 0.2, ("cmv-shell-" + std::to_string(n)).c_str());
}

Molecule btv_like(double scale, std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(kBtvDefaultAtoms * scale);
  return virus_shell(n, seed, 0.3, ("btv-shell-" + std::to_string(n)).c_str());
}

}  // namespace gbpol::molgen
