// Benchmark suites mirroring the paper's evaluation inputs.
//
// * zdock_like_suite: 84 bound complexes spanning 400-16,000 atoms, the size
//   range the paper quotes for ZDock Benchmark 2.0 (bound set).
// * cmv_like / btv_like: virus-capsid shells standing in for the Cucumber
//   Mosaic Virus shell (509,640 atoms) and Blue Tongue Virus (6M atoms).
//   Default sizes are scaled down for a single-core time budget; `scale`
//   multiplies them back up (GBPOL_BENCH_SCALE in the bench harness).
#pragma once

#include <cstdint>
#include <vector>

#include "molecule/molecule.hpp"

namespace gbpol::molgen {

struct SuiteSpec {
  std::size_t count = 84;
  std::size_t min_atoms = 400;
  std::size_t max_atoms = 16000;
  std::uint64_t seed = 20120101;  // SC'12
};

// Geometrically spaced sizes between min_atoms and max_atoms, one bound
// complex per size, deterministic in `spec.seed`.
std::vector<Molecule> zdock_like_suite(const SuiteSpec& spec = {});

// Just the sizes (cheap, for planning sweeps without generating atoms).
std::vector<std::size_t> zdock_like_sizes(const SuiteSpec& spec = {});

Molecule cmv_like(double scale = 1.0, std::uint64_t seed = 509640);
Molecule btv_like(double scale = 1.0, std::uint64_t seed = 6000000);

}  // namespace gbpol::molgen
