#include "molecule/molecule.hpp"

#include <algorithm>
#include <cmath>

namespace gbpol {

Aabb Molecule::bounding_box() const {
  Aabb box;
  for (const Atom& a : atoms_) box.expand(a.pos);
  return box;
}

Vec3 Molecule::centroid() const {
  Vec3 c;
  if (atoms_.empty()) return c;
  for (const Atom& a : atoms_) c += a.pos;
  return c / static_cast<double>(atoms_.size());
}

double Molecule::net_charge() const {
  double q = 0.0;
  for (const Atom& a : atoms_) q += a.charge;
  return q;
}

double Molecule::max_radius() const {
  double r = 0.0;
  for (const Atom& a : atoms_) r = std::max(r, a.radius);
  return r;
}

void Molecule::translate(const Vec3& delta) {
  for (Atom& a : atoms_) a.pos += delta;
}

void Molecule::rotate(const Vec3& axis, double angle) {
  const Vec3 c = centroid();
  const Vec3 u = normalized(axis);
  const double cs = std::cos(angle), sn = std::sin(angle);
  for (Atom& a : atoms_) {
    const Vec3 p = a.pos - c;
    // Rodrigues rotation formula.
    a.pos = c + p * cs + cross(u, p) * sn + u * (dot(u, p) * (1.0 - cs));
  }
}

void Molecule::append(const Molecule& other) {
  atoms_.insert(atoms_.end(), other.atoms_.begin(), other.atoms_.end());
}

}  // namespace gbpol
