// Molecule representation: the GB algorithms only need atom centers, van der
// Waals radii and partial charges (an "xyzqr" view of a molecule), so that is
// all we store. Biochemical identity (element, residue, chain) matters only
// to the synthetic generator.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/aabb.hpp"
#include "support/vec3.hpp"

namespace gbpol {

struct Atom {
  Vec3 pos;            // center, Angstrom
  double radius = 0;   // intrinsic (van der Waals) radius, Angstrom
  double charge = 0;   // partial charge, elementary charges
};

class Molecule {
 public:
  Molecule() = default;
  Molecule(std::string name, std::vector<Atom> atoms)
      : name_(std::move(name)), atoms_(std::move(atoms)) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return atoms_.size(); }
  std::span<const Atom> atoms() const { return atoms_; }
  std::span<Atom> atoms() { return atoms_; }
  const Atom& atom(std::size_t i) const { return atoms_[i]; }

  void add_atom(const Atom& a) { atoms_.push_back(a); }

  Aabb bounding_box() const;
  Vec3 centroid() const;
  double net_charge() const;
  // Largest intrinsic radius; useful as an octree leaf-size heuristic.
  double max_radius() const;

  // Rigid-body transforms, used by the docking example: the paper notes the
  // octree can be reused across ligand poses by transforming coordinates.
  void translate(const Vec3& delta);
  // Rotation about the molecule centroid by `angle` radians around `axis`.
  void rotate(const Vec3& axis, double angle);

  // Concatenates another molecule's atoms (receptor + ligand -> complex).
  void append(const Molecule& other);

 private:
  std::string name_;
  std::vector<Atom> atoms_;
};

}  // namespace gbpol
