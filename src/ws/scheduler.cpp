#include "ws/scheduler.hpp"

#include <cassert>
#include <chrono>

#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace gbpol::ws {
namespace {
thread_local int tls_worker_id = -1;
thread_local Scheduler* tls_scheduler = nullptr;
// Task nesting depth: tasks executed inside an enclosing task's wait() are
// already inside the outer task's CPU-time window, so only depth-0
// executions accumulate busy time (no double counting).
thread_local int tls_task_depth = 0;
}  // namespace

TaskGroup::~TaskGroup() {
  assert(pending_.load(std::memory_order_relaxed) == 0 &&
         "TaskGroup destroyed with outstanding tasks");
}

void TaskGroup::wait() {
  assert(Scheduler::in_pool() && "TaskGroup::wait must run on a pool thread");
  auto& self = *sched_.workers_[static_cast<std::size_t>(Scheduler::worker_id())];
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (detail::Task* task = sched_.find_task(self)) {
      sched_.execute(task, self);
    } else {
      std::this_thread::yield();
    }
  }
}

Scheduler::Scheduler(int num_workers) {
  const int n = num_workers > 0 ? num_workers : 1;
  creator_rank_ = obs::current_rank();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>(0xC0FFEEULL + static_cast<std::uint64_t>(i)));
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads_.emplace_back([this, i] { worker_main(i); });
}

Scheduler::~Scheduler() {
  shutdown_.store(true, std::memory_order_release);
  wake_all();
  for (std::thread& t : threads_) t.join();
}

int Scheduler::worker_id() { return tls_worker_id; }

void Scheduler::run(std::function<void()> root) {
  assert(!in_pool() && "Scheduler::run must not be called from inside the pool");
  root_done_.store(false, std::memory_order_relaxed);
  std::function<void()> fn = std::move(root);
  auto* task = new detail::Task{
      [this, fn = std::move(fn)] {
        fn();
        {
          std::lock_guard<std::mutex> lock(mutex_);
          root_done_.store(true, std::memory_order_release);
        }
        done_cv_.notify_all();
      },
      nullptr};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    injected_.push_back(task);
  }
  work_cv_.notify_one();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return root_done_.load(std::memory_order_acquire); });
}

void Scheduler::spawn(detail::Task* task) {
  const int id = worker_id();
  assert(id >= 0 && tls_scheduler == this && "spawn must come from this pool");
  workers_[static_cast<std::size_t>(id)]->deque.push(task);
  if (idle_.load(std::memory_order_relaxed) > 0) wake_one();
}

detail::Task* Scheduler::find_task(Worker& self) {
  detail::Task* task = nullptr;
  if (self.deque.pop(task)) return task;
  obs::add_pop_miss();

  // Random-victim stealing, one full sweep starting at a random offset.
  const std::size_t n = workers_.size();
  const std::size_t start = self.rng.next_below(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    Worker& victim = *workers_[v];
    if (&victim == &self) continue;
    obs::add_steal_attempt();
    if (victim.deque.steal(task)) {
      self.steals.fetch_add(1, std::memory_order_relaxed);
      obs::add_steal_success();
      // Events only materialize for successful steals, as one contiguous
      // triplet in the THIEF's stream: its own pop came up empty, it probed
      // `v`, it won. Spinning idle workers thus cost three relaxed counter
      // bumps per sweep, not trace traffic (the ≤5% on-but-idle budget).
      obs::emit(obs::EventKind::kPopMiss);
      obs::emit(obs::EventKind::kStealAttempt, v);
      obs::emit(obs::EventKind::kStealSuccess, v);
      return task;
    }
  }

  // Injection queue (root tasks). Pop FIFO so roots run in submission order —
  // LIFO here would starve early submissions whenever callers keep injecting.
  std::lock_guard<std::mutex> lock(mutex_);
  if (!injected_.empty()) {
    task = injected_.front();
    injected_.erase(injected_.begin());
    return task;
  }
  return nullptr;
}

void Scheduler::execute(detail::Task* task, Worker& self) {
  const bool outermost = tls_task_depth == 0;
  ++tls_task_depth;
  ThreadCpuTimer timer;
  task->fn();
  if (outermost) {
    const double secs = timer.seconds();
    self.busy_ns.fetch_add(static_cast<std::uint64_t>(secs * 1e9),
                           std::memory_order_relaxed);
  }
  --tls_task_depth;
  self.tasks.fetch_add(1, std::memory_order_relaxed);
  if (task->pending != nullptr)
    task->pending->fetch_sub(1, std::memory_order_acq_rel);
  delete task;
}

void Scheduler::worker_main(int id) {
  tls_worker_id = id;
  tls_scheduler = this;
  obs::set_thread_rank(creator_rank_);
  obs::set_thread_worker(id);
  Worker& self = *workers_[static_cast<std::size_t>(id)];
  int spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (detail::Task* task = find_task(self)) {
      execute(task, self);
      spins = 0;
      continue;
    }
    if (++spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Park until new work is injected or spawned.
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_.load(std::memory_order_acquire)) break;
    if (!injected_.empty()) continue;  // recheck under the lock
    idle_.fetch_add(1, std::memory_order_relaxed);
    work_cv_.wait_for(lock, std::chrono::milliseconds(2));
    idle_.fetch_sub(1, std::memory_order_relaxed);
    spins = 0;
  }
  tls_worker_id = -1;
  tls_scheduler = nullptr;
}

void Scheduler::wake_one() { work_cv_.notify_one(); }
void Scheduler::wake_all() { work_cv_.notify_all(); }

double Scheduler::Stats::max_busy() const {
  double m = 0.0;
  for (double b : busy_seconds) m = std::max(m, b);
  return m;
}

double Scheduler::Stats::total_busy() const {
  double s = 0.0;
  for (double b : busy_seconds) s += b;
  return s;
}

Scheduler::Stats Scheduler::stats() const {
  Stats st;
  st.busy_seconds.reserve(workers_.size());
  for (const auto& w : workers_) {
    st.tasks_executed += w->tasks.load(std::memory_order_relaxed);
    st.steals += w->steals.load(std::memory_order_relaxed);
    st.busy_seconds.push_back(
        static_cast<double>(w->busy_ns.load(std::memory_order_relaxed)) * 1e-9);
  }
  return st;
}

void Scheduler::reset_stats() {
  for (const auto& w : workers_) {
    w->tasks.store(0, std::memory_order_relaxed);
    w->steals.store(0, std::memory_order_relaxed);
    w->busy_ns.store(0, std::memory_order_relaxed);
  }
}

}  // namespace gbpol::ws
