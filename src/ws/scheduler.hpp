// Work-stealing task scheduler — the repository's stand-in for the cilk++
// runtime the paper uses inside each compute node.
//
// Semantics:
//  * `Scheduler::run(fn)` submits fn as a root task and blocks the calling
//    (non-pool) thread until fn and everything it spawned have finished.
//  * Inside the pool, `TaskGroup::run(f)` spawns f onto the current worker's
//    deque and `TaskGroup::wait()` syncs, executing pending work while it
//    waits (help-first, like cilk's sync).
//  * Thieves pick a random victim and steal the OLDEST task (top of the
//    victim's deque), the cilk++ discipline §IV-A describes.
//
// Instrumentation: per-worker busy seconds (thread CPU time spent executing
// tasks), task and steal counts. Busy time feeds the cluster makespan model:
// max-over-workers busy time is what a p-core node would have needed for the
// phase (see DESIGN.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/rng.hpp"
#include "ws/deque.hpp"

namespace gbpol::ws {

class Scheduler;

namespace detail {
struct Task {
  std::function<void()> fn;
  std::atomic<std::size_t>* pending = nullptr;  // owning TaskGroup's counter
};
}  // namespace detail

class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& sched) : sched_(sched) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  // All spawned tasks must be waited for before destruction.
  ~TaskGroup();

  // Spawns f to run asynchronously. Must be called from a pool thread.
  template <typename F>
  void run(F&& f);

  // Blocks until every task spawned through this group has finished,
  // executing available work in the meantime. Must be called from the pool.
  void wait();

 private:
  Scheduler& sched_;
  std::atomic<std::size_t> pending_{0};
};

class Scheduler {
 public:
  explicit Scheduler(int num_workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Runs `root` on the pool and blocks until it (and all tasks it spawned
  // and waited for) completes. Must be called from OUTSIDE the pool.
  void run(std::function<void()> root);

  // Id of the current pool thread in [0, num_workers), or -1 outside.
  static int worker_id();
  static bool in_pool() { return worker_id() >= 0; }

  struct Stats {
    std::uint64_t tasks_executed = 0;
    std::uint64_t steals = 0;
    std::vector<double> busy_seconds;  // per worker

    double max_busy() const;
    double total_busy() const;
  };
  Stats stats() const;
  void reset_stats();

 private:
  friend class TaskGroup;

  struct Worker {
    ChaseLevDeque<detail::Task*> deque;
    Rng rng;
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    // Busy nanoseconds; atomic so stats() can read while workers run.
    std::atomic<std::uint64_t> busy_ns{0};

    explicit Worker(std::uint64_t seed) : rng(seed) {}
  };

  void spawn(detail::Task* task);
  detail::Task* find_task(Worker& self);
  void execute(detail::Task* task, Worker& self);
  void worker_main(int id);
  void wake_one();
  void wake_all();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  // Simulated rank of the thread that built this pool (-1 outside mpisim);
  // workers inherit it so their trace events land in the owning rank's
  // timeline (obs::set_thread_rank).
  int creator_rank_ = -1;

  // Root-task injection + parking.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<detail::Task*> injected_;
  std::atomic<int> idle_ = 0;
  std::atomic<bool> shutdown_{false};

  // Root completion handshake.
  std::atomic<bool> root_done_{false};
};

template <typename F>
void TaskGroup::run(F&& f) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  auto* task = new detail::Task{std::forward<F>(f), &pending_};
  sched_.spawn(task);
}

}  // namespace gbpol::ws
