// Fork-join loop skeletons over the work-stealing scheduler.
//
// parallel_reduce performs its combines in a FIXED binary-tree order that is
// independent of which worker executes which half, so floating-point results
// are bit-identical run to run and equal to the serial left-to-right tree —
// the same determinism guarantee cilk++ reducer semantics give, and the
// reason the paper's node-based work division reports P-independent errors.
#pragma once

#include <cstddef>
#include <utility>

#include "ws/scheduler.hpp"

namespace gbpol::ws {

namespace detail {

template <typename F>
void pfor_impl(Scheduler& sched, std::size_t begin, std::size_t end,
               std::size_t grain, const F& body) {
  if (end - begin <= grain) {
    body(begin, end);
    return;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  TaskGroup group(sched);
  group.run([&] { pfor_impl(sched, begin, mid, grain, body); });
  pfor_impl(sched, mid, end, grain, body);
  group.wait();
}

template <typename T, typename Map, typename Combine>
T preduce_impl(Scheduler& sched, std::size_t begin, std::size_t end,
               std::size_t grain, const Map& map, const Combine& combine) {
  if (end - begin <= grain) return map(begin, end);
  const std::size_t mid = begin + (end - begin) / 2;
  T left{};
  TaskGroup group(sched);
  group.run([&] { left = preduce_impl<T>(sched, begin, mid, grain, map, combine); });
  T right = preduce_impl<T>(sched, mid, end, grain, map, combine);
  group.wait();
  return combine(std::move(left), std::move(right));
}

}  // namespace detail

// Calls body(chunk_begin, chunk_end) over disjoint chunks of [begin, end),
// each at most `grain` long. Callable from inside or outside the pool.
template <typename F>
void parallel_for(Scheduler& sched, std::size_t begin, std::size_t end,
                  std::size_t grain, F&& body) {
  if (begin >= end) return;
  const std::size_t g = grain > 0 ? grain : 1;
  if (Scheduler::in_pool()) {
    detail::pfor_impl(sched, begin, end, g, body);
  } else {
    sched.run([&] { detail::pfor_impl(sched, begin, end, g, body); });
  }
}

// Deterministic tree reduction: result equals the serial evaluation of the
// same combine tree regardless of scheduling. `map(b, e)` produces a chunk
// value; `combine(l, r)` merges adjacent chunk values left-to-right.
template <typename T, typename Map, typename Combine>
T parallel_reduce(Scheduler& sched, std::size_t begin, std::size_t end,
                  std::size_t grain, Map&& map, Combine&& combine) {
  if (begin >= end) return T{};
  const std::size_t g = grain > 0 ? grain : 1;
  if (Scheduler::in_pool())
    return detail::preduce_impl<T>(sched, begin, end, g, map, combine);
  T result{};
  sched.run([&] { result = detail::preduce_impl<T>(sched, begin, end, g, map, combine); });
  return result;
}

}  // namespace gbpol::ws
