// Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; memory orderings per
// Le, Pop, Cohen & Zappa Nardelli, PPoPP'13).
//
// The owner pushes and pops at the bottom (LIFO — hot data stays in cache);
// thieves steal from the top (the oldest, coldest task), which is exactly the
// cilk++ discipline the paper relies on for cache-friendly dynamic load
// balancing inside a compute node.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace gbpol::ws {

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::int64_t initial_capacity = 64)
      : buffer_(new Buffer(initial_capacity)) {
    retired_.emplace_back(buffer_.load(std::memory_order_relaxed));
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  // Owner only.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= buf->capacity) {
      buf = grow(buf, t, b);
    }
    buf->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    // Release store (not the paper's relaxed): every bottom_ store is the
    // owner's, so a thief's acquire load of ANY later value happens-after
    // this task's put. The fence above already provides that edge, but TSan
    // does not model fences and would flag every stolen task as a race; the
    // release store carries the same edge visibly and costs nothing on x86.
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. Returns true and fills `out` if a task was taken.
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore (release for the same TSan-visible
      // publish edge as push — a thief may read this value of bottom_).
      bottom_.store(b + 1, std::memory_order_release);
      return false;
    }
    out = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_release);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_release);
    }
    return true;
  }

  // Any thread. Returns true and fills `out` on success.
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    Buffer* buf = buffer_.load(std::memory_order_consume);
    T item = buf->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race
    }
    out = item;
    return true;
  }

  bool empty() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    const std::int64_t capacity;
    const std::int64_t mask;  // capacity is a power of two
    std::unique_ptr<std::atomic<T>[]> slots;

    T get(std::int64_t i) const { return slots[i & mask].load(std::memory_order_relaxed); }
    void put(std::int64_t i, T v) { slots[i & mask].store(v, std::memory_order_relaxed); }
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) fresh->put(i, old->get(i));
    Buffer* raw = fresh.get();
    // Old buffers stay alive until destruction: a thief may still be reading
    // one. Retiring instead of freeing makes growth safe without hazard
    // pointers; memory is bounded by 2x the peak size.
    retired_.push_back(std::move(fresh));
    buffer_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-modified only (in grow)
};

}  // namespace gbpol::ws
