// Minimal JSON value + recursive-descent parser, enough to round-trip the
// metrics.json schema (obs/export.hpp) without external dependencies. Not a
// general-purpose library: numbers parse via strtod, strings support the
// standard escapes (\uXXXX decodes to UTF-8), objects preserve insertion
// order so emitted documents are deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gbpol::obs::json {

enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

class Value;
using Array = std::vector<Value>;
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  Array& as_array() { return arr_; }
  const Object& as_object() const { return obj_; }
  Object& as_object() { return obj_; }

  // Object lookup; returns nullptr when absent or when this is not an object.
  const Value* find(const std::string& key) const;

  // Serialize compactly (no whitespace). Doubles print with %.17g so that
  // emit -> parse -> emit is a fixed point (round-trip exact for IEEE 754).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

struct ParseResult {
  bool ok = false;
  std::string error;     // empty when ok; includes byte offset otherwise
  Value value;
};

ParseResult parse(const std::string& text);

}  // namespace gbpol::obs::json
