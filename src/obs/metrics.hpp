// Counters / histograms metrics registry for the observability layer.
//
// The registry lives inside the tracer session (obs/trace.hpp) and is
// merged into a MetricsSnapshot when the session stops. Writers fall into
// two classes, chosen so the registry needs no locks on any hot path:
//
//   * per-rank slots (phase busy/wall seconds, per-collective counts/bytes/
//     modeled latency, retransmits, chunk service totals) — written only by
//     the owning rank's thread; the post-join drain in stop_session reads
//     them race-free.
//   * global counters (steal attempts/successes, pop misses, the chunk
//     service-time histogram) — relaxed atomics, touched by pool workers.
//
// "Merging across ranks at finalize" is therefore structural: every rank
// writes its own slot during the run and the snapshot aggregates the slots
// after the ranks have joined.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#ifndef GBPOL_TRACING_ENABLED
#define GBPOL_TRACING_ENABLED 1
#endif

namespace gbpol::obs {

// Collective flavour, for per-kind byte/latency metrics.
enum class CollKind : std::uint8_t {
  kBarrier = 0,
  kAllreduce,
  kReduce,
  kBcast,
  kAllgatherv,
  kCount,
};
inline constexpr int kCollKindCount = static_cast<int>(CollKind::kCount);
const char* coll_kind_name(CollKind k);

// Driver phases, in schedule order (mirrors core/drivers.cpp Fig. 4 steps).
enum class PhaseId : std::uint8_t {
  kBornAccum = 0,  // step 2: approximated integrals
  kBornReduce,     // step 3: allreduce (+ relay-chain recovery)
  kPush,           // step 4: Born radii for this rank's atoms
  kBornGather,     // step 5: allgatherv (+ slice recovery)
  kEpol,           // step 6: partial energy
  kEpolReduce,     // step 7: reduce to root (+ chain recovery)
  kOther,          // anything outside an explicit phase bracket
  kCount,
};
inline constexpr int kPhaseCount = static_cast<int>(PhaseId::kCount);
const char* phase_name(PhaseId p);

// Log2 service-time histogram: bin i counts chunks whose wall service time
// in nanoseconds satisfies 2^i <= ns < 2^(i+1) (bin 0 also takes ns < 2).
inline constexpr int kServiceHistBins = 48;
int service_hist_bin(std::uint64_t ns);

// Immutable aggregate produced by stop_session. `ranks` is the number of
// per-rank slots that saw any activity (max active rank + 1).
struct MetricsSnapshot {
  int ranks = 0;

  // Per rank, per phase [rank][phase].
  std::vector<std::array<double, kPhaseCount>> phase_busy_seconds;
  std::vector<std::array<double, kPhaseCount>> phase_wall_seconds;

  // Per rank, per collective kind [rank][kind].
  std::vector<std::array<std::uint64_t, kCollKindCount>> collective_count;
  std::vector<std::array<std::uint64_t, kCollKindCount>> collective_bytes;
  std::vector<std::array<double, kCollKindCount>> collective_seconds;

  // Per-rank run totals, recorded by the Runtime at finalize.
  std::vector<double> rank_compute_seconds;
  std::vector<double> rank_straggler_seconds;
  std::vector<double> rank_comm_seconds;
  std::vector<std::uint64_t> rank_bytes_sent;
  std::vector<std::uint64_t> rank_retries;
  std::vector<std::uint64_t> rank_redistributed;

  // Per-rank p2p retransmit rounds observed by recv (subset of retries).
  std::vector<std::uint64_t> rank_retransmits;

  // Leaf-chunk service accounting (dispatched by the drivers).
  std::vector<std::uint64_t> rank_chunks;
  std::vector<double> rank_chunk_service_seconds;
  std::array<std::uint64_t, kServiceHistBins> chunk_service_hist{};

  // Cross-rank chunk migration (balanced driver path): chunks a rank
  // computed that the initial partition assigned to some OTHER rank.
  std::vector<std::uint64_t> rank_migrated_chunks;

  // Owned-mode halo traffic (core/halo_exchange.hpp): point-level Born halo
  // payload each rank sent/received over p2p, and the message count.
  std::vector<std::uint64_t> rank_halo_bytes_sent;
  std::vector<std::uint64_t> rank_halo_bytes_recv;
  std::vector<std::uint64_t> rank_halo_msgs;

  // Data-integrity layer: per-rank silent-corruption accounting. `injected`
  // counts scheduled flips that actually fired; `detected` the checksum
  // mismatches the guards caught; `recomputed` the canonical chunks rebuilt
  // fresh-from-zero; `retransmits` the modeled corruption-retransmit rounds
  // (disjoint from rank_retransmits, which counts dropped-copy rounds).
  std::vector<std::uint64_t> rank_corruption_injected;
  std::vector<std::uint64_t> rank_corruption_detected;
  std::vector<std::uint64_t> rank_corruption_recomputed;
  std::vector<std::uint64_t> rank_corruption_retransmits;

  // Work stealing (whole session, all pools).
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t pop_misses = 0;

  // Incremental trajectory engine (core/incremental.hpp): delta_update steps
  // observed this session, total leaves re-anchored by them, and total list
  // segments re-derived (the reuse counterpart is derivable: segments per
  // step minus rebuilt).
  std::uint64_t delta_updates = 0;
  std::uint64_t delta_dirty_leaves = 0;
  std::uint64_t delta_lists_rebuilt = 0;

  // Serving layer (serve/service.hpp): request and prepared-state cache
  // accounting for this session. Evicted bytes are cumulative over the
  // session, not the cache's current occupancy.
  std::uint64_t requests_accepted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_evicted_bytes = 0;
  std::uint64_t batches_dispatched = 0;

  // -- aggregates ---------------------------------------------------------
  double total_phase_busy(int rank) const;
  double total_phase_busy_all() const;
  double phase_busy_all_ranks(PhaseId p) const;
  double phase_wall_all_ranks(PhaseId p) const;
  std::uint64_t collective_bytes_all_ranks(CollKind k) const;
  std::uint64_t collective_count_all_ranks(CollKind k) const;
  double collective_seconds_all_ranks(CollKind k) const;
  std::uint64_t total_retransmits() const;
  std::uint64_t total_chunks() const;
  std::uint64_t total_migrated_chunks() const;
  std::uint64_t total_halo_bytes() const;  // sent side (recv mirrors it)
  std::uint64_t total_corruption_injected() const;
  std::uint64_t total_corruption_detected() const;
  std::uint64_t total_corruption_recomputed() const;
  std::uint64_t total_corruption_retransmits() const;
  double steal_success_rate() const;  // successes / attempts (0 if none)
  // Cross-rank imbalance: max over ranks of chunks computed, divided by the
  // mean (1.0 = perfectly even; 0 if no chunks were dispatched).
  double chunk_imbalance() const;
  // Per-rank chunk counts as a histogram over ranks — the balance benches
  // plot this to show the skew each policy leaves behind.
  const std::vector<std::uint64_t>& chunk_histogram() const {
    return rank_chunks;
  }
};

#if GBPOL_TRACING_ENABLED

// All adders are no-ops when no session is active; rank ids outside
// [0, max_ranks) are clamped into the overflow slot (max_ranks - 1) so a
// misconfigured session can lose attribution but never write out of bounds.
// Host-thread activity (rank -1) is ignored by the per-rank adders.
void add_phase_busy(int rank, double seconds);
void add_phase_wall(int rank, PhaseId phase, double seconds);
void add_collective(int rank, CollKind kind, std::uint64_t bytes,
                    double modeled_seconds);
void add_retransmit(int rank);
void add_chunk_service(int rank, std::uint64_t ns);
void add_migrated_chunk(int rank);
void add_halo_sent(int rank, std::uint64_t bytes);
void add_halo_recv(int rank, std::uint64_t bytes);
void add_corruption_injected(int rank);
void add_corruption_detected(int rank);
void add_corruption_recompute(int rank);
void add_corruption_retransmit(int rank);
void add_steal_attempt();
void add_steal_success();
void add_pop_miss();
void add_delta_update(std::uint64_t dirty_leaves, std::uint64_t lists_rebuilt);
void add_request_accepted();
void add_request_served();
void add_cache_hit();
void add_cache_miss();
void add_cache_eviction(std::uint64_t bytes);
void add_batch_dispatched();
void record_rank_totals(int rank, double compute_seconds,
                        double straggler_seconds, double comm_seconds,
                        std::uint64_t bytes_sent, std::uint64_t retries,
                        std::uint64_t redistributed);

#else

inline void add_phase_busy(int, double) {}
inline void add_phase_wall(int, PhaseId, double) {}
inline void add_collective(int, CollKind, std::uint64_t, double) {}
inline void add_retransmit(int) {}
inline void add_chunk_service(int, std::uint64_t) {}
inline void add_migrated_chunk(int) {}
inline void add_halo_sent(int, std::uint64_t) {}
inline void add_halo_recv(int, std::uint64_t) {}
inline void add_corruption_injected(int) {}
inline void add_corruption_detected(int) {}
inline void add_corruption_recompute(int) {}
inline void add_corruption_retransmit(int) {}
inline void add_steal_attempt() {}
inline void add_steal_success() {}
inline void add_pop_miss() {}
inline void add_delta_update(std::uint64_t, std::uint64_t) {}
inline void add_request_accepted() {}
inline void add_request_served() {}
inline void add_cache_hit() {}
inline void add_cache_miss() {}
inline void add_cache_eviction(std::uint64_t) {}
inline void add_batch_dispatched() {}
inline void record_rank_totals(int, double, double, double, std::uint64_t,
                               std::uint64_t, std::uint64_t) {}

#endif  // GBPOL_TRACING_ENABLED

}  // namespace gbpol::obs
