#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gbpol::obs::json {

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Value& v, std::string& out) {
  switch (v.type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Type::kNumber: {
      const double d = v.as_number();
      // JSON has no NaN/Inf; "%.17g" would emit "nan"/"inf" and corrupt the
      // document. Dump null instead — emitters that care surface the defect
      // loudly via a non_finite_fields error entry before dumping.
      if (!std::isfinite(d)) {
        out += "null";
        break;
      }
      // Integers up to 2^53 print without an exponent so logical counters
      // (seqs, byte totals) stay greppable; %.17g keeps doubles exact.
      char buf[40];
      if (d == static_cast<double>(static_cast<long long>(d)) &&
          d >= -9.007199254740992e15 && d <= 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      out += buf;
      break;
    }
    case Type::kString:
      dump_string(v.as_string(), out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(e, out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        dump_value(e, out);
      }
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult run() {
    ParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      result.error = error_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool fail(const char* msg) {
    if (error_.empty())
      error_ = std::string(msg) + " at byte " + std::to_string(pos_);
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parse_value(Value& out) {
    if (++depth_ > 64) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case 'n': ok = literal("null", 4); if (ok) out = Value(nullptr); break;
      case 't': ok = literal("true", 4); if (ok) out = Value(true); break;
      case 'f': ok = literal("false", 5); if (ok) out = Value(false); break;
      case '"': ok = parse_string_value(out); break;
      case '[': ok = parse_array(out); break;
      case '{': ok = parse_object(out); break;
      default: ok = parse_number(out); break;
    }
    --depth_;
    return ok;
  }

  bool parse_number(Value& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) return fail("invalid number");
    // strtod accepts "inf"/"nan" spellings JSON forbids, and a finite
    // literal can still overflow to infinity; both are rejected so a
    // non-finite value can never round-trip through this parser.
    if (!std::isfinite(d)) return fail("non-finite number");
    pos_ += static_cast<std::size_t>(end - start);
    out = Value(d);
    return true;
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("truncated escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            pos_ += 4;
            // Encode BMP code point as UTF-8 (surrogate pairs unsupported —
            // the schema never emits them).
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return fail("invalid escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_string_value(Value& out) {
    std::string s;
    if (!parse_string(s)) return false;
    out = Value(std::move(s));
    return true;
  }

  bool parse_array(Value& out) {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = Value(std::move(arr));
      return true;
    }
    while (true) {
      Value elem;
      skip_ws();
      if (!parse_value(elem)) return false;
      arr.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = Value(std::move(arr));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = Value(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      skip_ws();
      Value val;
      if (!parse_value(val)) return false;
      obj.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = Value(std::move(obj));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

ParseResult parse(const std::string& text) {
  return Parser(text).run();
}

}  // namespace gbpol::obs::json
