#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace gbpol::obs {

// --- canonical trace dump ------------------------------------------------

std::string canonical_dump(const Trace& trace) {
  std::string out;
  out.reserve(trace.total_events() * 48 + 256);
  char line[160];
  for (const EventStream& s : trace.streams) {
    std::snprintf(line, sizeof(line),
                  "stream rank=%d worker=%d dropped=%" PRIu64 "\n",
                  static_cast<int>(s.rank), static_cast<int>(s.worker),
                  s.dropped);
    out += line;
    for (const Event& e : s.events) {
      // kPhaseEnd carries a wall duration in `a`; mask it like wall_ns.
      const std::uint64_t a =
          e.kind == EventKind::kPhaseEnd ? 0 : e.a;
      std::snprintf(line, sizeof(line),
                    "  %s a=%" PRIu64 " b=%" PRIu64 " arg=%u\n",
                    event_kind_name(e.kind), a, e.b,
                    static_cast<unsigned>(e.arg));
      out += line;
    }
  }
  return out;
}

// --- Chrome trace_event JSON ---------------------------------------------

namespace {

json::Object chrome_common(const Event& e) {
  json::Object o;
  o.emplace_back("pid", json::Value(static_cast<int>(e.rank)));
  o.emplace_back("tid", json::Value(static_cast<int>(e.worker) + 1));
  o.emplace_back("ts", json::Value(static_cast<double>(e.wall_ns) / 1000.0));
  return o;
}

void add_arg(json::Object& args, const char* key, std::uint64_t v) {
  args.emplace_back(key, json::Value(v));
}

}  // namespace

std::string chrome_trace_json(const Trace& trace) {
  json::Array events;
  for (const EventStream& s : trace.streams) {
    for (const Event& e : s.events) {
      json::Object o = chrome_common(e);
      json::Object args;
      const char* ph = "i";  // instant by default
      std::string name = event_kind_name(e.kind);
      switch (e.kind) {
        case EventKind::kPhaseBegin:
          ph = "B";
          name = phase_name(static_cast<PhaseId>(e.arg));
          break;
        case EventKind::kPhaseEnd:
          ph = "E";
          name = phase_name(static_cast<PhaseId>(e.arg));
          break;
        case EventKind::kChunkDispatch:
          ph = "B";
          name = "chunk";
          add_arg(args, "lo", e.a);
          add_arg(args, "hi", e.b);
          break;
        case EventKind::kChunkDone:
          ph = "E";
          name = "chunk";
          break;
        case EventKind::kCollectiveEnter:
          ph = "B";
          name = coll_kind_name(static_cast<CollKind>(e.arg));
          add_arg(args, "seq", e.a);
          break;
        case EventKind::kCollectiveExit:
          ph = "E";
          name = coll_kind_name(static_cast<CollKind>(e.arg));
          add_arg(args, "bytes", e.b);
          break;
        case EventKind::kCollectiveAbort:
          add_arg(args, "seq", e.a);
          add_arg(args, "retry_streak", e.b);
          break;
        case EventKind::kStealSuccess:
        case EventKind::kStealAttempt:
          add_arg(args, "victim", e.a);
          break;
        case EventKind::kSend:
          add_arg(args, "dst", e.a);
          add_arg(args, "bytes", e.b);
          break;
        case EventKind::kRecv:
          add_arg(args, "src", e.a);
          add_arg(args, "bytes", e.b);
          break;
        case EventKind::kRetransmit:
          add_arg(args, "src", e.a);
          add_arg(args, "attempt", e.b);
          break;
        case EventKind::kDeath:
          add_arg(args, "seq", e.a);
          add_arg(args, "cause", e.arg);
          break;
        case EventKind::kKillPoll:
          add_arg(args, "seq", e.a);
          add_arg(args, "tick", e.b);
          break;
        case EventKind::kCheckpointCommit:
          add_arg(args, "cursor", e.a);
          add_arg(args, "phase", e.arg);
          break;
        case EventKind::kStallPark:
          add_arg(args, "seq", e.a);
          break;
        case EventKind::kStealRequest:
          add_arg(args, "victim", e.a);
          add_arg(args, "remaining", e.b);
          break;
        case EventKind::kStealGrant:
          add_arg(args, "victim", e.a);
          add_arg(args, "granted", e.b);
          break;
        case EventKind::kCorruptionInject:
        case EventKind::kCorruptionDetect:
        case EventKind::kCorruptionRetransmit:
          add_arg(args, "where", e.a);
          add_arg(args, "bytes", e.b);
          add_arg(args, "site", e.arg);
          break;
        case EventKind::kCorruptionRecompute:
          add_arg(args, "chunk", e.a);
          add_arg(args, "bytes", e.b);
          add_arg(args, "site", e.arg);
          break;
        default:
          break;
      }
      o.emplace_back("ph", json::Value(ph));
      o.emplace_back("name", json::Value(std::move(name)));
      if (std::string(ph) == "i")
        o.emplace_back("s", json::Value("t"));  // thread-scoped instant
      if (!args.empty()) o.emplace_back("args", json::Value(std::move(args)));
      events.push_back(json::Value(std::move(o)));
    }
  }
  json::Object root;
  root.emplace_back("traceEvents", json::Value(std::move(events)));
  root.emplace_back("displayTimeUnit", json::Value("ms"));
  return json::Value(std::move(root)).dump();
}

bool write_chrome_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << chrome_trace_json(trace);
  return static_cast<bool>(out);
}

// --- metrics.json --------------------------------------------------------

namespace {

json::Value u64_array(const std::vector<std::uint64_t>& v) {
  json::Array a;
  a.reserve(v.size());
  for (const std::uint64_t x : v) a.push_back(json::Value(x));
  return json::Value(std::move(a));
}

json::Value dbl_array(const std::vector<double>& v) {
  json::Array a;
  a.reserve(v.size());
  for (const double x : v) a.push_back(json::Value(x));
  return json::Value(std::move(a));
}

template <typename T, std::size_t N>
json::Value matrix(const std::vector<std::array<T, N>>& m) {
  json::Array rows;
  rows.reserve(m.size());
  for (const auto& row : m) {
    json::Array r;
    r.reserve(N);
    for (const T x : row) r.push_back(json::Value(x));
    rows.push_back(json::Value(std::move(r)));
  }
  return json::Value(std::move(rows));
}

json::Value snapshot_to_json(const MetricsSnapshot& m) {
  json::Object o;
  o.emplace_back("ranks", json::Value(m.ranks));
  o.emplace_back("phase_busy_seconds", matrix(m.phase_busy_seconds));
  o.emplace_back("phase_wall_seconds", matrix(m.phase_wall_seconds));
  o.emplace_back("collective_count", matrix(m.collective_count));
  o.emplace_back("collective_bytes", matrix(m.collective_bytes));
  o.emplace_back("collective_seconds", matrix(m.collective_seconds));
  o.emplace_back("rank_compute_seconds", dbl_array(m.rank_compute_seconds));
  o.emplace_back("rank_straggler_seconds",
                 dbl_array(m.rank_straggler_seconds));
  o.emplace_back("rank_comm_seconds", dbl_array(m.rank_comm_seconds));
  o.emplace_back("rank_bytes_sent", u64_array(m.rank_bytes_sent));
  o.emplace_back("rank_retries", u64_array(m.rank_retries));
  o.emplace_back("rank_redistributed", u64_array(m.rank_redistributed));
  o.emplace_back("rank_retransmits", u64_array(m.rank_retransmits));
  o.emplace_back("rank_chunks", u64_array(m.rank_chunks));
  o.emplace_back("rank_chunk_service_seconds",
                 dbl_array(m.rank_chunk_service_seconds));
  o.emplace_back("rank_migrated_chunks", u64_array(m.rank_migrated_chunks));
  o.emplace_back("rank_halo_bytes_sent", u64_array(m.rank_halo_bytes_sent));
  o.emplace_back("rank_halo_bytes_recv", u64_array(m.rank_halo_bytes_recv));
  o.emplace_back("rank_halo_msgs", u64_array(m.rank_halo_msgs));
  o.emplace_back("rank_corruption_injected",
                 u64_array(m.rank_corruption_injected));
  o.emplace_back("rank_corruption_detected",
                 u64_array(m.rank_corruption_detected));
  o.emplace_back("rank_corruption_recomputed",
                 u64_array(m.rank_corruption_recomputed));
  o.emplace_back("rank_corruption_retransmits",
                 u64_array(m.rank_corruption_retransmits));
  {
    json::Array hist;
    for (const std::uint64_t x : m.chunk_service_hist)
      hist.push_back(json::Value(x));
    o.emplace_back("chunk_service_hist", json::Value(std::move(hist)));
  }
  o.emplace_back("steal_attempts", json::Value(m.steal_attempts));
  o.emplace_back("steal_successes", json::Value(m.steal_successes));
  o.emplace_back("pop_misses", json::Value(m.pop_misses));
  o.emplace_back("delta_updates", json::Value(m.delta_updates));
  o.emplace_back("delta_dirty_leaves", json::Value(m.delta_dirty_leaves));
  o.emplace_back("delta_lists_rebuilt", json::Value(m.delta_lists_rebuilt));
  o.emplace_back("requests_accepted", json::Value(m.requests_accepted));
  o.emplace_back("requests_served", json::Value(m.requests_served));
  o.emplace_back("cache_hits", json::Value(m.cache_hits));
  o.emplace_back("cache_misses", json::Value(m.cache_misses));
  o.emplace_back("cache_evictions", json::Value(m.cache_evictions));
  o.emplace_back("cache_evicted_bytes", json::Value(m.cache_evicted_bytes));
  o.emplace_back("batches_dispatched", json::Value(m.batches_dispatched));
  // Derived convenience fields: written for humans/plots, IGNORED by the
  // parser (recomputable), so they are not schema surface.
  o.emplace_back("derived_steal_success_rate",
                 json::Value(m.steal_success_rate()));
  o.emplace_back("derived_total_phase_busy_seconds",
                 json::Value(m.total_phase_busy_all()));
  o.emplace_back("derived_chunk_imbalance", json::Value(m.chunk_imbalance()));
  return json::Value(std::move(o));
}

// Satellite guard: JSON cannot carry NaN/Inf, so a snapshot holding one
// would otherwise serialize as a silently-nulled value. Collect the names of
// offending fields so the emitter can flag them loudly at the document root
// and the parser can reject the flagged document outright.
void collect_non_finite_fields(const MetricsSnapshot& m,
                               const std::string& prefix,
                               std::vector<std::string>& out) {
  const auto check_dbl = [&](const std::vector<double>& v, const char* name) {
    for (const double x : v)
      if (!std::isfinite(x)) {
        out.push_back(prefix + name);
        return;
      }
  };
  const auto check_mat = [&]<std::size_t N>(
                             const std::vector<std::array<double, N>>& mat,
                             const char* name) {
    for (const auto& row : mat)
      for (const double x : row)
        if (!std::isfinite(x)) {
          out.push_back(prefix + name);
          return;
        }
  };
  check_mat(m.phase_busy_seconds, "phase_busy_seconds");
  check_mat(m.phase_wall_seconds, "phase_wall_seconds");
  check_mat(m.collective_seconds, "collective_seconds");
  check_dbl(m.rank_compute_seconds, "rank_compute_seconds");
  check_dbl(m.rank_straggler_seconds, "rank_straggler_seconds");
  check_dbl(m.rank_comm_seconds, "rank_comm_seconds");
  check_dbl(m.rank_chunk_service_seconds, "rank_chunk_service_seconds");
}

bool read_u64_array(const json::Value* v, std::vector<std::uint64_t>& out,
                    std::string& err, const char* name) {
  if (v == nullptr || !v->is_array()) {
    err = std::string("missing array field: ") + name;
    return false;
  }
  out.clear();
  for (const json::Value& e : v->as_array()) {
    if (!e.is_number()) {
      err = std::string("non-numeric element in ") + name;
      return false;
    }
    out.push_back(static_cast<std::uint64_t>(e.as_number()));
  }
  return true;
}

bool read_dbl_array(const json::Value* v, std::vector<double>& out,
                    std::string& err, const char* name) {
  if (v == nullptr || !v->is_array()) {
    err = std::string("missing array field: ") + name;
    return false;
  }
  out.clear();
  for (const json::Value& e : v->as_array()) {
    if (!e.is_number()) {
      err = std::string("non-numeric element in ") + name;
      return false;
    }
    out.push_back(e.as_number());
  }
  return true;
}

template <typename T, std::size_t N>
bool read_matrix(const json::Value* v, std::vector<std::array<T, N>>& out,
                 std::string& err, const char* name) {
  if (v == nullptr || !v->is_array()) {
    err = std::string("missing matrix field: ") + name;
    return false;
  }
  out.clear();
  for (const json::Value& row : v->as_array()) {
    if (!row.is_array() || row.as_array().size() != N) {
      err = std::string("bad row width in ") + name;
      return false;
    }
    std::array<T, N> r{};
    for (std::size_t i = 0; i < N; ++i) {
      const json::Value& e = row.as_array()[i];
      if (!e.is_number()) {
        err = std::string("non-numeric element in ") + name;
        return false;
      }
      r[i] = static_cast<T>(e.as_number());
    }
    out.push_back(r);
  }
  return true;
}

bool snapshot_from_json(const json::Value& v, MetricsSnapshot& m,
                        std::string& err) {
  if (!v.is_object()) {
    err = "metrics is not an object";
    return false;
  }
  const json::Value* ranks = v.find("ranks");
  if (ranks == nullptr || !ranks->is_number()) {
    err = "missing field: ranks";
    return false;
  }
  m.ranks = static_cast<int>(ranks->as_number());
  if (!read_matrix(v.find("phase_busy_seconds"), m.phase_busy_seconds, err,
                   "phase_busy_seconds") ||
      !read_matrix(v.find("phase_wall_seconds"), m.phase_wall_seconds, err,
                   "phase_wall_seconds") ||
      !read_matrix(v.find("collective_count"), m.collective_count, err,
                   "collective_count") ||
      !read_matrix(v.find("collective_bytes"), m.collective_bytes, err,
                   "collective_bytes") ||
      !read_matrix(v.find("collective_seconds"), m.collective_seconds, err,
                   "collective_seconds") ||
      !read_dbl_array(v.find("rank_compute_seconds"), m.rank_compute_seconds,
                      err, "rank_compute_seconds") ||
      !read_dbl_array(v.find("rank_straggler_seconds"),
                      m.rank_straggler_seconds, err,
                      "rank_straggler_seconds") ||
      !read_dbl_array(v.find("rank_comm_seconds"), m.rank_comm_seconds, err,
                      "rank_comm_seconds") ||
      !read_u64_array(v.find("rank_bytes_sent"), m.rank_bytes_sent, err,
                      "rank_bytes_sent") ||
      !read_u64_array(v.find("rank_retries"), m.rank_retries, err,
                      "rank_retries") ||
      !read_u64_array(v.find("rank_redistributed"), m.rank_redistributed, err,
                      "rank_redistributed") ||
      !read_u64_array(v.find("rank_retransmits"), m.rank_retransmits, err,
                      "rank_retransmits") ||
      !read_u64_array(v.find("rank_chunks"), m.rank_chunks, err,
                      "rank_chunks") ||
      !read_dbl_array(v.find("rank_chunk_service_seconds"),
                      m.rank_chunk_service_seconds, err,
                      "rank_chunk_service_seconds"))
    return false;
  // Pure v1 addition (PR 5): absent in docs written before the balancer
  // existed, so it parses as empty rather than rejecting the document.
  if (const json::Value* mig = v.find("rank_migrated_chunks");
      mig != nullptr &&
      !read_u64_array(mig, m.rank_migrated_chunks, err,
                      "rank_migrated_chunks"))
    return false;
  // Pure v1 additions (owned mode): same absent-parses-as-empty policy.
  if (const json::Value* hs = v.find("rank_halo_bytes_sent");
      hs != nullptr &&
      !read_u64_array(hs, m.rank_halo_bytes_sent, err, "rank_halo_bytes_sent"))
    return false;
  if (const json::Value* hr = v.find("rank_halo_bytes_recv");
      hr != nullptr &&
      !read_u64_array(hr, m.rank_halo_bytes_recv, err, "rank_halo_bytes_recv"))
    return false;
  if (const json::Value* hm = v.find("rank_halo_msgs");
      hm != nullptr &&
      !read_u64_array(hm, m.rank_halo_msgs, err, "rank_halo_msgs"))
    return false;
  // Pure v1 additions (data-integrity layer): absent-parses-as-empty.
  if (const json::Value* ci = v.find("rank_corruption_injected");
      ci != nullptr &&
      !read_u64_array(ci, m.rank_corruption_injected, err,
                      "rank_corruption_injected"))
    return false;
  if (const json::Value* cd = v.find("rank_corruption_detected");
      cd != nullptr &&
      !read_u64_array(cd, m.rank_corruption_detected, err,
                      "rank_corruption_detected"))
    return false;
  if (const json::Value* cr = v.find("rank_corruption_recomputed");
      cr != nullptr &&
      !read_u64_array(cr, m.rank_corruption_recomputed, err,
                      "rank_corruption_recomputed"))
    return false;
  if (const json::Value* ct = v.find("rank_corruption_retransmits");
      ct != nullptr &&
      !read_u64_array(ct, m.rank_corruption_retransmits, err,
                      "rank_corruption_retransmits"))
    return false;
  const json::Value* hist = v.find("chunk_service_hist");
  if (hist == nullptr || !hist->is_array() ||
      hist->as_array().size() != static_cast<std::size_t>(kServiceHistBins)) {
    err = "missing or mis-sized chunk_service_hist";
    return false;
  }
  for (int i = 0; i < kServiceHistBins; ++i) {
    const json::Value& e = hist->as_array()[static_cast<std::size_t>(i)];
    if (!e.is_number()) {
      err = "non-numeric element in chunk_service_hist";
      return false;
    }
    m.chunk_service_hist[static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>(e.as_number());
  }
  const json::Value* sa = v.find("steal_attempts");
  const json::Value* ss = v.find("steal_successes");
  const json::Value* pm = v.find("pop_misses");
  if (sa == nullptr || !sa->is_number() || ss == nullptr ||
      !ss->is_number() || pm == nullptr || !pm->is_number()) {
    err = "missing steal counters";
    return false;
  }
  m.steal_attempts = static_cast<std::uint64_t>(sa->as_number());
  m.steal_successes = static_cast<std::uint64_t>(ss->as_number());
  m.pop_misses = static_cast<std::uint64_t>(pm->as_number());
  // Pure v1 additions (incremental trajectories): absent in documents
  // written before the trajectory engine existed, so they parse as zero.
  if (const json::Value* f = v.find("delta_updates"); f != nullptr && f->is_number())
    m.delta_updates = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("delta_dirty_leaves"); f != nullptr && f->is_number())
    m.delta_dirty_leaves = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("delta_lists_rebuilt"); f != nullptr && f->is_number())
    m.delta_lists_rebuilt = static_cast<std::uint64_t>(f->as_number());
  // Pure v1 additions (serving layer): same optional policy.
  if (const json::Value* f = v.find("requests_accepted"); f != nullptr && f->is_number())
    m.requests_accepted = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("requests_served"); f != nullptr && f->is_number())
    m.requests_served = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("cache_hits"); f != nullptr && f->is_number())
    m.cache_hits = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("cache_misses"); f != nullptr && f->is_number())
    m.cache_misses = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("cache_evictions"); f != nullptr && f->is_number())
    m.cache_evictions = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("cache_evicted_bytes"); f != nullptr && f->is_number())
    m.cache_evicted_bytes = static_cast<std::uint64_t>(f->as_number());
  if (const json::Value* f = v.find("batches_dispatched"); f != nullptr && f->is_number())
    m.batches_dispatched = static_cast<std::uint64_t>(f->as_number());
  return true;
}

}  // namespace

json::Value metrics_to_json(const MetricsDoc& doc) {
  json::Object root;
  root.emplace_back("schema_version", json::Value(kMetricsSchemaVersion));
  root.emplace_back("figure", json::Value(doc.figure));
  json::Array entries;
  entries.reserve(doc.entries.size());
  std::vector<std::string> non_finite;
  for (std::size_t i = 0; i < doc.entries.size(); ++i) {
    const MetricsEntry& e = doc.entries[i];
    collect_non_finite_fields(
        e.metrics, "entries[" + std::to_string(i) + "].metrics.", non_finite);
    json::Object o;
    o.emplace_back("label", json::Value(e.label));
    if (!e.extra.empty()) o.emplace_back("extra", json::Value(e.extra));
    o.emplace_back("metrics", snapshot_to_json(e.metrics));
    entries.push_back(json::Value(std::move(o)));
  }
  root.emplace_back("entries", json::Value(std::move(entries)));
  // Loud poison marker: a NaN/Inf metric would serialize as null, so the
  // document names the fields it could not represent and the parser refuses
  // to accept it (better a rejected document than a silently-wrong plot).
  if (!non_finite.empty()) {
    json::Array bad;
    bad.reserve(non_finite.size());
    for (std::string& f : non_finite) bad.push_back(json::Value(std::move(f)));
    root.emplace_back("non_finite_fields", json::Value(std::move(bad)));
  }
  return json::Value(std::move(root));
}

MetricsParse metrics_from_json(const json::Value& root) {
  MetricsParse result;
  if (!root.is_object()) {
    result.error = "document is not an object";
    return result;
  }
  const json::Value* ver = root.find("schema_version");
  if (ver == nullptr || !ver->is_number()) {
    result.error = "missing schema_version";
    return result;
  }
  result.found_version = static_cast<int>(ver->as_number());
  if (result.found_version != kMetricsSchemaVersion) {
    result.version_mismatch = true;
    result.error = "schema_version " + std::to_string(result.found_version) +
                   " != supported " + std::to_string(kMetricsSchemaVersion);
    return result;
  }
  if (const json::Value* bad = root.find("non_finite_fields");
      bad != nullptr && bad->is_array() && !bad->as_array().empty()) {
    result.error = "document flagged non-finite fields:";
    for (const json::Value& f : bad->as_array())
      if (f.is_string()) result.error += " " + f.as_string();
    return result;
  }
  const json::Value* figure = root.find("figure");
  if (figure == nullptr || !figure->is_string()) {
    result.error = "missing figure";
    return result;
  }
  result.doc.figure = figure->as_string();
  const json::Value* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    result.error = "missing entries";
    return result;
  }
  for (const json::Value& ev : entries->as_array()) {
    MetricsEntry entry;
    const json::Value* label = ev.find("label");
    if (label == nullptr || !label->is_string()) {
      result.error = "entry missing label";
      return result;
    }
    entry.label = label->as_string();
    if (const json::Value* extra = ev.find("extra"); extra != nullptr) {
      if (!extra->is_object()) {
        result.error = "entry extra is not an object";
        return result;
      }
      entry.extra = extra->as_object();
    }
    const json::Value* metrics = ev.find("metrics");
    if (metrics == nullptr ||
        !snapshot_from_json(*metrics, entry.metrics, result.error)) {
      if (result.error.empty()) result.error = "entry missing metrics";
      return result;
    }
    result.doc.entries.push_back(std::move(entry));
  }
  result.ok = true;
  return result;
}

MetricsParse metrics_from_string(const std::string& text) {
  const json::ParseResult parsed = json::parse(text);
  if (!parsed.ok) {
    MetricsParse result;
    result.error = "json parse error: " + parsed.error;
    return result;
  }
  return metrics_from_json(parsed.value);
}

bool write_metrics_json(const MetricsDoc& doc, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << metrics_to_json(doc).dump() << "\n";
  return static_cast<bool>(out);
}

}  // namespace gbpol::obs
