// Exporters for the observability layer.
//
//  * canonical_dump: deterministic text form of a Trace with every wall-time
//    field masked — the bit-identical replay artifact golden_trace_test pins.
//  * Chrome trace_event JSON (chrome://tracing or https://ui.perfetto.dev):
//    phases become B/E duration events, point events (deaths, retransmits,
//    checkpoint commits, steals) become instants; pid = rank, tid = worker.
//  * metrics.json: stable versioned schema (kMetricsSchemaVersion) adopted
//    by the bench drivers. Version policy: ANY field removal/rename or
//    semantic change bumps the version; pure additions keep it. Parsers
//    reject unknown versions loudly (version_mismatch) instead of guessing.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace gbpol::obs {

inline constexpr int kMetricsSchemaVersion = 1;

// --- canonical trace dump ------------------------------------------------

// One line per event, streams in (rank, worker, reg_index) order, wall_ns
// and the kPhaseEnd duration payload masked. Two runs with the same seed and
// FaultPlan produce byte-identical dumps.
std::string canonical_dump(const Trace& trace);

// --- Chrome trace_event JSON ---------------------------------------------

std::string chrome_trace_json(const Trace& trace);
bool write_chrome_trace(const Trace& trace, const std::string& path);

// --- metrics.json schema -------------------------------------------------

// One benchmark configuration's metrics: a label (e.g. "OCT_MPI+CILK p=12"),
// free-form scalar context (energy, ranks, modeled seconds, ...) and the
// merged snapshot.
struct MetricsEntry {
  std::string label;
  json::Object extra;        // scalar context fields, emitted verbatim
  MetricsSnapshot metrics;
};

struct MetricsDoc {
  std::string figure;        // producing driver, e.g. "fig5_speedup"
  std::vector<MetricsEntry> entries;
};

json::Value metrics_to_json(const MetricsDoc& doc);

struct MetricsParse {
  bool ok = false;
  bool version_mismatch = false;  // parsed, but schema_version != ours
  int found_version = -1;
  std::string error;
  MetricsDoc doc;
};

MetricsParse metrics_from_json(const json::Value& root);
MetricsParse metrics_from_string(const std::string& text);

bool write_metrics_json(const MetricsDoc& doc, const std::string& path);

}  // namespace gbpol::obs
