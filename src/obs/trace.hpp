// Structured event tracing for mpisim, the work-stealing pool, the drivers
// and the checkpoint layer.
//
// Model: a globally started *session* owns one single-producer ring buffer
// per participating OS thread (registered lazily at a thread's first emit).
// Events are stamped with the emitting thread's (rank, worker) context —
// plumbed by mpisim::Runtime and ws::Scheduler — plus the payload's LOGICAL
// clocks (collective sequence numbers, chunk cursors, poll ticks) and a
// CLOCK_MONOTONIC wall timestamp. Because every payload except the wall
// stamp is keyed to the deterministic logical schedule, two runs with the
// same seed and FaultPlan produce *structurally identical* streams: the
// canonical dump (export.hpp) masks wall time and is bit-identical across
// replays. That is what makes the tracer testable (tests/golden_trace_test)
// rather than merely printable.
//
// Overhead: when no session is active every emit is one relaxed atomic load
// and a predicted branch. When the build is configured with
// -DGBPOL_TRACING=OFF the emit paths and context setters compile to empty
// inline functions — zero code in the instrumented hot paths — while the
// passive data types (Event, Trace) stay available so exporters and tools
// still build.
//
// Threading contract: start_session/stop_session must not race with
// emitters. The repo's usage brackets driver runs (all rank and worker
// threads are joined before the driver returns), which satisfies this by
// construction. A thread whose session ended re-registers on its next emit
// (sessions are numbered by a monotonically increasing epoch).
//
// Overflow: a buffer that reaches capacity keeps the PREFIX of its stream
// and counts the rest in `dropped` — a truncated stream is still a valid
// prefix for the structural invariants, unlike a wrap-around that would cut
// event pairs in half.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

#ifndef GBPOL_TRACING_ENABLED
#define GBPOL_TRACING_ENABLED 1
#endif

namespace gbpol::obs {

enum class EventKind : std::uint8_t {
  kRunBegin = 0,       // a = ranks
  kRunEnd,             // a = ranks
  kPhaseBegin,         // arg = PhaseId
  kPhaseEnd,           // arg = PhaseId, a = duration ns (masked in canon)
  kChunkDispatch,      // a = lo, b = hi (leaf/atom range), arg = PhaseId
  kChunkDone,          // a = lo, b = hi, arg = PhaseId
  kPopMiss,            // thief's own deque was empty before a steal
  kStealAttempt,       // a = victim worker id
  kStealSuccess,       // a = victim worker id
  kCollectiveEnter,    // a = collective seq, arg = CollKind
  kCollectiveExit,     // a = collective seq, b = bytes, arg = CollKind
  kCollectiveAbort,    // a = collective seq, b = retry streak, arg = CollKind
  kSend,               // a = dst rank, b = bytes
  kRecv,               // a = src rank, b = bytes
  kRetransmit,         // a = src rank, b = attempt index (0-based)
  kStallPark,          // a = collective seq
  kDeath,              // a = collective seq, arg = DeathCause
  kKillPoll,           // a = collective seq, b = tick, arg = 1 if kill seen
  kCheckpointCommit,   // a = cursor, arg = ckpt phase
  // Cross-rank balancing (PR 5); appended so older kind ids stay stable.
  kStealRequest,       // a = victim rank, b = thief's remaining chunk count
  kStealGrant,         // a = victim rank, b = chunks granted (0 = refused)
  // Owned-mode halo exchange (core/halo_exchange.hpp); appended so older
  // kind ids stay stable.
  kHaloPlan,           // a = owned atom count, b = Born-halo atom count
  kHaloSend,           // a = dst rank, b = bytes
  kHaloRecv,           // a = src rank, b = bytes
  // Data-integrity layer (DESIGN.md "Data integrity & silent corruption");
  // appended so older kind ids stay stable. arg = site: 0 p2p message,
  // 1 collective payload, 2 hot array, 3 snapshot bytes.
  kCorruptionInject,     // a = peer/seq/chunk (site-specific), b = bytes
  kCorruptionDetect,     // a = peer/seq/chunk, b = bytes
  kCorruptionRecompute,  // a = chunk id, b = bytes recomputed
  kCorruptionRetransmit, // a = peer/seq, b = bytes
  // Incremental trajectory engine (core/incremental.hpp); appended so older
  // kind ids stay stable.
  kPrepReuse,            // a = list segments reused, b = segments rebuilt
  kDeltaUpdate,          // a = re-anchored (dirty) leaves, b = moved atoms
  // Serving layer (serve/service.hpp); appended so older kind ids stay
  // stable.
  kRequestAccept,        // a = job sequence number
  kRequestDispatch,      // a = job sequence number, b = batch id
  kRequestDone,          // a = job sequence number, b = served path
  kCacheHit,             // a = cache key (low 64), b = entry bytes
  kCacheMiss,            // a = cache key (low 64)
  kCacheEvict,           // a = cache key (low 64), b = entry bytes freed
};

// Why a rank left the run through the death machinery.
enum class DeathCause : std::uint8_t {
  kScheduled = 0,      // FaultPlan::Death fired at a collective entry
  kKilled = 1,         // process kill / abandon()
  kStallConverted = 2, // supervisor watchdog converted an injected stall
};

// 32-byte POD event record. `wall_ns` is the only nondeterministic field;
// canonicalization masks it.
struct Event {
  std::uint64_t wall_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  EventKind kind{};
  std::uint8_t arg = 0;
  std::int16_t rank = -1;    // -1 = host thread (no simulated rank)
  std::int16_t worker = -1;  // -1 = rank/main thread, >= 0 = pool worker
  std::uint16_t pad = 0;
};
static_assert(sizeof(Event) == 32, "Event must stay one cache-line half");

const char* event_kind_name(EventKind k);

// One thread's recorded stream, in that thread's program order.
struct EventStream {
  std::int16_t rank = -1;
  std::int16_t worker = -1;
  std::uint64_t reg_index = 0;  // registration order within the session
  std::uint64_t dropped = 0;    // events lost to the capacity cap
  std::vector<Event> events;
};

// The drained result of a session: all streams (sorted by rank, worker,
// registration order) plus the merged metrics snapshot.
struct Trace {
  std::vector<EventStream> streams;
  MetricsSnapshot metrics;

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const EventStream& s : streams) n += s.events.size();
    return n;
  }
  std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const EventStream& s : streams) n += s.dropped;
    return n;
  }
};

struct TraceConfig {
  // Per-thread event capacity. Streams keep the first `ring_capacity`
  // events and count the overflow in EventStream::dropped.
  std::size_t ring_capacity = 1u << 15;
  // Upper bound on rank ids recorded in per-rank metric slots.
  int max_ranks = 512;
};

#if GBPOL_TRACING_ENABLED

namespace detail {
// Bottom bit set = a session is active. Incremented on every start AND stop,
// so an epoch value never repeats and stale thread-local buffer pointers are
// detected by a simple inequality.
extern std::atomic<std::uint64_t> g_epoch;
void emit_slow(EventKind kind, std::uint64_t a, std::uint64_t b,
               std::uint8_t arg);
}  // namespace detail

// Starts a global session. Only one session may be active; starting while
// active terminates (programming error).
void start_session(const TraceConfig& config = {});
// Drains every buffer and the metrics registry. Callers must ensure no
// emitter can race (join rank/worker threads first — the drivers do).
Trace stop_session();

inline bool session_active() {
  return (detail::g_epoch.load(std::memory_order_acquire) & 1u) != 0;
}

inline void emit(EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
                 std::uint8_t arg = 0) {
  if (session_active()) detail::emit_slow(kind, a, b, arg);
}

// Thread context, stamped into every event this thread emits.
void set_thread_rank(int rank);
void set_thread_worker(int worker);
int current_rank();
int current_worker();

// Phase bracket for the drivers. phase_begin auto-closes a still-open phase
// first, so per-thread phase intervals can never overlap — the structural
// invariant tests/trace_invariants_test.cpp pins. Records phase wall time
// into the metrics registry and leaves the phase id in TLS so that
// add_phase_busy (metrics.hpp) attributes compute seconds to it.
void phase_begin(PhaseId phase);
void phase_end();
PhaseId current_phase();

#else  // GBPOL_TRACING_ENABLED == 0: everything compiles to nothing.

inline void start_session(const TraceConfig& = {}) {}
inline Trace stop_session() { return {}; }
inline bool session_active() { return false; }
inline void emit(EventKind, std::uint64_t = 0, std::uint64_t = 0,
                 std::uint8_t = 0) {}
inline void set_thread_rank(int) {}
inline void set_thread_worker(int) {}
inline int current_rank() { return -1; }
inline int current_worker() { return -1; }
inline void phase_begin(PhaseId) {}
inline void phase_end() {}
inline PhaseId current_phase() { return PhaseId::kOther; }

#endif  // GBPOL_TRACING_ENABLED

}  // namespace gbpol::obs
