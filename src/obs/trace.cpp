#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <deque>
#include <memory>
#include <mutex>

namespace gbpol::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kRunBegin: return "run_begin";
    case EventKind::kRunEnd: return "run_end";
    case EventKind::kPhaseBegin: return "phase_begin";
    case EventKind::kPhaseEnd: return "phase_end";
    case EventKind::kChunkDispatch: return "chunk_dispatch";
    case EventKind::kChunkDone: return "chunk_done";
    case EventKind::kPopMiss: return "pop_miss";
    case EventKind::kStealAttempt: return "steal_attempt";
    case EventKind::kStealSuccess: return "steal_success";
    case EventKind::kCollectiveEnter: return "coll_enter";
    case EventKind::kCollectiveExit: return "coll_exit";
    case EventKind::kCollectiveAbort: return "coll_abort";
    case EventKind::kSend: return "send";
    case EventKind::kRecv: return "recv";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kStallPark: return "stall_park";
    case EventKind::kDeath: return "death";
    case EventKind::kKillPoll: return "kill_poll";
    case EventKind::kCheckpointCommit: return "ckpt_commit";
    case EventKind::kStealRequest: return "steal_request";
    case EventKind::kStealGrant: return "steal_grant";
    case EventKind::kHaloPlan: return "halo_plan";
    case EventKind::kHaloSend: return "halo_send";
    case EventKind::kHaloRecv: return "halo_recv";
    case EventKind::kCorruptionInject: return "corruption_inject";
    case EventKind::kCorruptionDetect: return "corruption_detect";
    case EventKind::kCorruptionRecompute: return "corruption_recompute";
    case EventKind::kCorruptionRetransmit: return "corruption_retransmit";
    case EventKind::kPrepReuse: return "prep_reuse";
    case EventKind::kDeltaUpdate: return "delta_update";
    case EventKind::kRequestAccept: return "request_accept";
    case EventKind::kRequestDispatch: return "request_dispatch";
    case EventKind::kRequestDone: return "request_done";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheEvict: return "cache_evict";
  }
  return "unknown";
}

const char* coll_kind_name(CollKind k) {
  switch (k) {
    case CollKind::kBarrier: return "barrier";
    case CollKind::kAllreduce: return "allreduce";
    case CollKind::kReduce: return "reduce";
    case CollKind::kBcast: return "bcast";
    case CollKind::kAllgatherv: return "allgatherv";
    case CollKind::kCount: break;
  }
  return "unknown";
}

const char* phase_name(PhaseId p) {
  switch (p) {
    case PhaseId::kBornAccum: return "born_accum";
    case PhaseId::kBornReduce: return "born_reduce";
    case PhaseId::kPush: return "push";
    case PhaseId::kBornGather: return "born_gather";
    case PhaseId::kEpol: return "epol";
    case PhaseId::kEpolReduce: return "epol_reduce";
    case PhaseId::kOther: return "other";
    case PhaseId::kCount: break;
  }
  return "unknown";
}

int service_hist_bin(std::uint64_t ns) {
  int bin = 0;
  while (ns > 1 && bin < kServiceHistBins - 1) {
    ns >>= 1;
    ++bin;
  }
  return bin;
}

#if GBPOL_TRACING_ENABLED

namespace {

std::uint64_t wall_now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

struct ThreadBuffer {
  std::int16_t rank = -1;
  std::int16_t worker = -1;
  std::uint64_t reg_index = 0;
  std::uint64_t dropped = 0;
  std::size_t capacity = 0;
  std::vector<Event> events;  // reserved to capacity at registration
};

// Per-rank slot written only by that rank's thread (see metrics.hpp for the
// locking story); globals are relaxed atomics.
struct RankSlot {
  std::array<double, kPhaseCount> phase_busy{};
  std::array<double, kPhaseCount> phase_wall{};
  std::array<std::uint64_t, kCollKindCount> coll_count{};
  std::array<std::uint64_t, kCollKindCount> coll_bytes{};
  std::array<double, kCollKindCount> coll_seconds{};
  std::uint64_t retransmits = 0;
  std::uint64_t chunks = 0;
  std::uint64_t migrated_chunks = 0;
  std::uint64_t halo_bytes_sent = 0;
  std::uint64_t halo_bytes_recv = 0;
  std::uint64_t halo_msgs = 0;
  std::uint64_t corruption_injected = 0;
  std::uint64_t corruption_detected = 0;
  std::uint64_t corruption_recomputed = 0;
  std::uint64_t corruption_retransmits = 0;
  double chunk_service_seconds = 0.0;
  double compute_seconds = 0.0;
  double straggler_seconds = 0.0;
  double comm_seconds = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t redistributed = 0;
  bool active = false;  // any adder touched this slot
};

// Session storage is a leaked singleton: a stray thread observing a stale
// epoch never dereferences freed registry memory (buffers it might still
// point at are invalidated by the epoch check before any use).
struct SessionState {
  std::mutex mutex;
  TraceConfig config;
  std::deque<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint64_t next_reg_index = 0;
  std::vector<RankSlot> ranks;
  std::array<std::atomic<std::uint64_t>, kServiceHistBins> hist{};
  std::atomic<std::uint64_t> steal_attempts{0};
  std::atomic<std::uint64_t> steal_successes{0};
  std::atomic<std::uint64_t> pop_misses{0};
  std::atomic<std::uint64_t> delta_updates{0};
  std::atomic<std::uint64_t> delta_dirty_leaves{0};
  std::atomic<std::uint64_t> delta_lists_rebuilt{0};
  std::atomic<std::uint64_t> requests_accepted{0};
  std::atomic<std::uint64_t> requests_served{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> cache_evictions{0};
  std::atomic<std::uint64_t> cache_evicted_bytes{0};
  std::atomic<std::uint64_t> batches_dispatched{0};
};

SessionState& state() {
  static SessionState* s = new SessionState;
  return *s;
}

thread_local int tls_rank = -1;
thread_local int tls_worker = -1;
thread_local ThreadBuffer* tls_buffer = nullptr;
thread_local std::uint64_t tls_buffer_epoch = 0;
thread_local PhaseId tls_phase = PhaseId::kOther;
thread_local std::uint64_t tls_phase_start_ns = 0;

// Clamp a rank into the registry's slot range; -1 (host thread) gets no
// slot. Slots are pre-sized at start_session, so writes never reallocate.
RankSlot* slot_for(int rank) {
  if (!session_active() || rank < 0) return nullptr;
  SessionState& s = state();
  const int max = static_cast<int>(s.ranks.size());
  if (max == 0) return nullptr;
  RankSlot& slot = s.ranks[static_cast<std::size_t>(std::min(rank, max - 1))];
  slot.active = true;
  return &slot;
}

}  // namespace

namespace detail {

std::atomic<std::uint64_t> g_epoch{0};

void emit_slow(EventKind kind, std::uint64_t a, std::uint64_t b,
               std::uint8_t arg) {
  SessionState& s = state();
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if ((epoch & 1u) == 0) return;  // session ended between check and here
  if (tls_buffer == nullptr || tls_buffer_epoch != epoch) {
    std::lock_guard<std::mutex> lock(s.mutex);
    // Re-check under the lock: stop_session also takes it, so a buffer is
    // never registered into a session that has already drained.
    if (g_epoch.load(std::memory_order_relaxed) != epoch) return;
    auto buf = std::make_unique<ThreadBuffer>();
    buf->rank = static_cast<std::int16_t>(tls_rank);
    buf->worker = static_cast<std::int16_t>(tls_worker);
    buf->reg_index = s.next_reg_index++;
    buf->capacity = s.config.ring_capacity;
    buf->events.reserve(buf->capacity);
    tls_buffer = buf.get();
    tls_buffer_epoch = epoch;
    s.buffers.push_back(std::move(buf));
  }
  ThreadBuffer& buf = *tls_buffer;
  if (buf.events.size() >= buf.capacity) {
    ++buf.dropped;
    return;
  }
  Event e;
  e.wall_ns = wall_now_ns();
  e.a = a;
  e.b = b;
  e.kind = kind;
  e.arg = arg;
  e.rank = static_cast<std::int16_t>(tls_rank);
  e.worker = static_cast<std::int16_t>(tls_worker);
  buf.events.push_back(e);
}

}  // namespace detail

void start_session(const TraceConfig& config) {
  SessionState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (session_active()) {
    std::fprintf(stderr, "obs: start_session while a session is active\n");
    std::abort();
  }
  s.config = config;
  s.config.ring_capacity = std::max<std::size_t>(16, config.ring_capacity);
  s.buffers.clear();
  s.next_reg_index = 0;
  s.ranks.assign(static_cast<std::size_t>(std::max(1, config.max_ranks)),
                 RankSlot{});
  for (auto& bin : s.hist) bin.store(0, std::memory_order_relaxed);
  s.steal_attempts.store(0, std::memory_order_relaxed);
  s.steal_successes.store(0, std::memory_order_relaxed);
  s.pop_misses.store(0, std::memory_order_relaxed);
  s.delta_updates.store(0, std::memory_order_relaxed);
  s.delta_dirty_leaves.store(0, std::memory_order_relaxed);
  s.delta_lists_rebuilt.store(0, std::memory_order_relaxed);
  s.requests_accepted.store(0, std::memory_order_relaxed);
  s.requests_served.store(0, std::memory_order_relaxed);
  s.cache_hits.store(0, std::memory_order_relaxed);
  s.cache_misses.store(0, std::memory_order_relaxed);
  s.cache_evictions.store(0, std::memory_order_relaxed);
  s.cache_evicted_bytes.store(0, std::memory_order_relaxed);
  s.batches_dispatched.store(0, std::memory_order_relaxed);
  detail::g_epoch.fetch_add(1, std::memory_order_release);  // even -> odd
}

Trace stop_session() {
  SessionState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!session_active()) {
    std::fprintf(stderr, "obs: stop_session without an active session\n");
    std::abort();
  }
  detail::g_epoch.fetch_add(1, std::memory_order_release);  // odd -> even

  Trace trace;
  trace.streams.reserve(s.buffers.size());
  for (auto& buf : s.buffers) {
    EventStream stream;
    stream.rank = buf->rank;
    stream.worker = buf->worker;
    stream.reg_index = buf->reg_index;
    stream.dropped = buf->dropped;
    stream.events = std::move(buf->events);
    trace.streams.push_back(std::move(stream));
  }
  s.buffers.clear();
  std::sort(trace.streams.begin(), trace.streams.end(),
            [](const EventStream& x, const EventStream& y) {
              if (x.rank != y.rank) return x.rank < y.rank;
              if (x.worker != y.worker) return x.worker < y.worker;
              return x.reg_index < y.reg_index;
            });

  MetricsSnapshot& m = trace.metrics;
  int active_ranks = 0;
  for (int r = 0; r < static_cast<int>(s.ranks.size()); ++r)
    if (s.ranks[static_cast<std::size_t>(r)].active) active_ranks = r + 1;
  m.ranks = active_ranks;
  const auto n = static_cast<std::size_t>(active_ranks);
  m.phase_busy_seconds.resize(n);
  m.phase_wall_seconds.resize(n);
  m.collective_count.resize(n);
  m.collective_bytes.resize(n);
  m.collective_seconds.resize(n);
  m.rank_compute_seconds.resize(n);
  m.rank_straggler_seconds.resize(n);
  m.rank_comm_seconds.resize(n);
  m.rank_bytes_sent.resize(n);
  m.rank_retries.resize(n);
  m.rank_redistributed.resize(n);
  m.rank_retransmits.resize(n);
  m.rank_chunks.resize(n);
  m.rank_chunk_service_seconds.resize(n);
  m.rank_migrated_chunks.resize(n);
  m.rank_halo_bytes_sent.resize(n);
  m.rank_halo_bytes_recv.resize(n);
  m.rank_halo_msgs.resize(n);
  m.rank_corruption_injected.resize(n);
  m.rank_corruption_detected.resize(n);
  m.rank_corruption_recomputed.resize(n);
  m.rank_corruption_retransmits.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const RankSlot& slot = s.ranks[r];
    m.phase_busy_seconds[r] = slot.phase_busy;
    m.phase_wall_seconds[r] = slot.phase_wall;
    m.collective_count[r] = slot.coll_count;
    m.collective_bytes[r] = slot.coll_bytes;
    m.collective_seconds[r] = slot.coll_seconds;
    m.rank_compute_seconds[r] = slot.compute_seconds;
    m.rank_straggler_seconds[r] = slot.straggler_seconds;
    m.rank_comm_seconds[r] = slot.comm_seconds;
    m.rank_bytes_sent[r] = slot.bytes_sent;
    m.rank_retries[r] = slot.retries;
    m.rank_redistributed[r] = slot.redistributed;
    m.rank_retransmits[r] = slot.retransmits;
    m.rank_chunks[r] = slot.chunks;
    m.rank_chunk_service_seconds[r] = slot.chunk_service_seconds;
    m.rank_migrated_chunks[r] = slot.migrated_chunks;
    m.rank_halo_bytes_sent[r] = slot.halo_bytes_sent;
    m.rank_halo_bytes_recv[r] = slot.halo_bytes_recv;
    m.rank_halo_msgs[r] = slot.halo_msgs;
    m.rank_corruption_injected[r] = slot.corruption_injected;
    m.rank_corruption_detected[r] = slot.corruption_detected;
    m.rank_corruption_recomputed[r] = slot.corruption_recomputed;
    m.rank_corruption_retransmits[r] = slot.corruption_retransmits;
  }
  for (int i = 0; i < kServiceHistBins; ++i)
    m.chunk_service_hist[static_cast<std::size_t>(i)] =
        s.hist[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  m.steal_attempts = s.steal_attempts.load(std::memory_order_relaxed);
  m.steal_successes = s.steal_successes.load(std::memory_order_relaxed);
  m.pop_misses = s.pop_misses.load(std::memory_order_relaxed);
  m.delta_updates = s.delta_updates.load(std::memory_order_relaxed);
  m.delta_dirty_leaves = s.delta_dirty_leaves.load(std::memory_order_relaxed);
  m.delta_lists_rebuilt = s.delta_lists_rebuilt.load(std::memory_order_relaxed);
  m.requests_accepted = s.requests_accepted.load(std::memory_order_relaxed);
  m.requests_served = s.requests_served.load(std::memory_order_relaxed);
  m.cache_hits = s.cache_hits.load(std::memory_order_relaxed);
  m.cache_misses = s.cache_misses.load(std::memory_order_relaxed);
  m.cache_evictions = s.cache_evictions.load(std::memory_order_relaxed);
  m.cache_evicted_bytes = s.cache_evicted_bytes.load(std::memory_order_relaxed);
  m.batches_dispatched = s.batches_dispatched.load(std::memory_order_relaxed);
  s.ranks.clear();
  return trace;
}

void set_thread_rank(int rank) { tls_rank = rank; }
void set_thread_worker(int worker) { tls_worker = worker; }
int current_rank() { return tls_rank; }
int current_worker() { return tls_worker; }

void phase_begin(PhaseId phase) {
  if (tls_phase != PhaseId::kOther) phase_end();  // auto-close: no overlap
  tls_phase = phase;
  tls_phase_start_ns = wall_now_ns();
  emit(EventKind::kPhaseBegin, 0, 0, static_cast<std::uint8_t>(phase));
}

void phase_end() {
  if (tls_phase == PhaseId::kOther) return;
  const std::uint64_t dur = wall_now_ns() - tls_phase_start_ns;
  emit(EventKind::kPhaseEnd, dur, 0, static_cast<std::uint8_t>(tls_phase));
  add_phase_wall(tls_rank, tls_phase, static_cast<double>(dur) * 1e-9);
  tls_phase = PhaseId::kOther;
}

PhaseId current_phase() { return tls_phase; }

// --- metrics adders (declared in metrics.hpp) ----------------------------

void add_phase_busy(int rank, double seconds) {
  if (RankSlot* slot = slot_for(rank))
    slot->phase_busy[static_cast<std::size_t>(tls_phase)] += seconds;
}

void add_phase_wall(int rank, PhaseId phase, double seconds) {
  if (RankSlot* slot = slot_for(rank))
    slot->phase_wall[static_cast<std::size_t>(phase)] += seconds;
}

void add_collective(int rank, CollKind kind, std::uint64_t bytes,
                    double modeled_seconds) {
  if (RankSlot* slot = slot_for(rank)) {
    const auto k = static_cast<std::size_t>(kind);
    slot->coll_count[k] += 1;
    slot->coll_bytes[k] += bytes;
    slot->coll_seconds[k] += modeled_seconds;
  }
}

void add_retransmit(int rank) {
  if (RankSlot* slot = slot_for(rank)) slot->retransmits += 1;
}

void add_chunk_service(int rank, std::uint64_t ns) {
  if (RankSlot* slot = slot_for(rank)) {
    slot->chunks += 1;
    slot->chunk_service_seconds += static_cast<double>(ns) * 1e-9;
  }
  if (session_active())
    state().hist[static_cast<std::size_t>(service_hist_bin(ns))].fetch_add(
        1, std::memory_order_relaxed);
}

void add_migrated_chunk(int rank) {
  if (RankSlot* slot = slot_for(rank)) slot->migrated_chunks += 1;
}

void add_halo_sent(int rank, std::uint64_t bytes) {
  if (RankSlot* slot = slot_for(rank)) {
    slot->halo_bytes_sent += bytes;
    slot->halo_msgs += 1;
  }
}

void add_halo_recv(int rank, std::uint64_t bytes) {
  if (RankSlot* slot = slot_for(rank)) {
    slot->halo_bytes_recv += bytes;
    slot->halo_msgs += 1;
  }
}

void add_corruption_injected(int rank) {
  if (RankSlot* slot = slot_for(rank)) slot->corruption_injected += 1;
}

void add_corruption_detected(int rank) {
  if (RankSlot* slot = slot_for(rank)) slot->corruption_detected += 1;
}

void add_corruption_recompute(int rank) {
  if (RankSlot* slot = slot_for(rank)) slot->corruption_recomputed += 1;
}

void add_corruption_retransmit(int rank) {
  if (RankSlot* slot = slot_for(rank)) slot->corruption_retransmits += 1;
}

void add_steal_attempt() {
  if (session_active())
    state().steal_attempts.fetch_add(1, std::memory_order_relaxed);
}

void add_steal_success() {
  if (session_active())
    state().steal_successes.fetch_add(1, std::memory_order_relaxed);
}

void add_pop_miss() {
  if (session_active())
    state().pop_misses.fetch_add(1, std::memory_order_relaxed);
}

void add_delta_update(std::uint64_t dirty_leaves, std::uint64_t lists_rebuilt) {
  if (!session_active()) return;
  SessionState& s = state();
  s.delta_updates.fetch_add(1, std::memory_order_relaxed);
  s.delta_dirty_leaves.fetch_add(dirty_leaves, std::memory_order_relaxed);
  s.delta_lists_rebuilt.fetch_add(lists_rebuilt, std::memory_order_relaxed);
}

void add_request_accepted() {
  if (session_active())
    state().requests_accepted.fetch_add(1, std::memory_order_relaxed);
}

void add_request_served() {
  if (session_active())
    state().requests_served.fetch_add(1, std::memory_order_relaxed);
}

void add_cache_hit() {
  if (session_active())
    state().cache_hits.fetch_add(1, std::memory_order_relaxed);
}

void add_cache_miss() {
  if (session_active())
    state().cache_misses.fetch_add(1, std::memory_order_relaxed);
}

void add_cache_eviction(std::uint64_t bytes) {
  if (!session_active()) return;
  SessionState& s = state();
  s.cache_evictions.fetch_add(1, std::memory_order_relaxed);
  s.cache_evicted_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void add_batch_dispatched() {
  if (session_active())
    state().batches_dispatched.fetch_add(1, std::memory_order_relaxed);
}

void record_rank_totals(int rank, double compute_seconds,
                        double straggler_seconds, double comm_seconds,
                        std::uint64_t bytes_sent, std::uint64_t retries,
                        std::uint64_t redistributed) {
  if (RankSlot* slot = slot_for(rank)) {
    slot->compute_seconds += compute_seconds;
    slot->straggler_seconds += straggler_seconds;
    slot->comm_seconds += comm_seconds;
    slot->bytes_sent += bytes_sent;
    slot->retries += retries;
    slot->redistributed += redistributed;
  }
}

#endif  // GBPOL_TRACING_ENABLED

// --- MetricsSnapshot aggregates (built in both modes) --------------------

double MetricsSnapshot::total_phase_busy(int rank) const {
  if (rank < 0 || rank >= ranks) return 0.0;
  double sum = 0.0;
  for (double b : phase_busy_seconds[static_cast<std::size_t>(rank)]) sum += b;
  return sum;
}

double MetricsSnapshot::total_phase_busy_all() const {
  double sum = 0.0;
  for (int r = 0; r < ranks; ++r) sum += total_phase_busy(r);
  return sum;
}

double MetricsSnapshot::phase_busy_all_ranks(PhaseId p) const {
  double sum = 0.0;
  for (int r = 0; r < ranks; ++r)
    sum += phase_busy_seconds[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(p)];
  return sum;
}

double MetricsSnapshot::phase_wall_all_ranks(PhaseId p) const {
  double sum = 0.0;
  for (int r = 0; r < ranks; ++r)
    sum += phase_wall_seconds[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(p)];
  return sum;
}

std::uint64_t MetricsSnapshot::collective_bytes_all_ranks(CollKind k) const {
  std::uint64_t sum = 0;
  for (int r = 0; r < ranks; ++r)
    sum += collective_bytes[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(k)];
  return sum;
}

std::uint64_t MetricsSnapshot::collective_count_all_ranks(CollKind k) const {
  std::uint64_t sum = 0;
  for (int r = 0; r < ranks; ++r)
    sum += collective_count[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(k)];
  return sum;
}

double MetricsSnapshot::collective_seconds_all_ranks(CollKind k) const {
  double sum = 0.0;
  for (int r = 0; r < ranks; ++r)
    sum += collective_seconds[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(k)];
  return sum;
}

std::uint64_t MetricsSnapshot::total_retransmits() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_retransmits) sum += v;
  return sum;
}

std::uint64_t MetricsSnapshot::total_chunks() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_chunks) sum += v;
  return sum;
}

std::uint64_t MetricsSnapshot::total_migrated_chunks() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_migrated_chunks) sum += v;
  return sum;
}

std::uint64_t MetricsSnapshot::total_halo_bytes() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_halo_bytes_sent) sum += v;
  return sum;
}

std::uint64_t MetricsSnapshot::total_corruption_injected() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_corruption_injected) sum += v;
  return sum;
}

std::uint64_t MetricsSnapshot::total_corruption_detected() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_corruption_detected) sum += v;
  return sum;
}

std::uint64_t MetricsSnapshot::total_corruption_recomputed() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_corruption_recomputed) sum += v;
  return sum;
}

std::uint64_t MetricsSnapshot::total_corruption_retransmits() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t v : rank_corruption_retransmits) sum += v;
  return sum;
}

double MetricsSnapshot::chunk_imbalance() const {
  if (rank_chunks.empty()) return 0.0;
  std::uint64_t max = 0, total = 0;
  for (const std::uint64_t v : rank_chunks) {
    max = std::max(max, v);
    total += v;
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(rank_chunks.size());
  return static_cast<double>(max) / mean;
}

double MetricsSnapshot::steal_success_rate() const {
  if (steal_attempts == 0) return 0.0;
  return static_cast<double>(steal_successes) /
         static_cast<double>(steal_attempts);
}

}  // namespace gbpol::obs

