#include "baselines/descreening.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "core/analytic.hpp"
#include "mpisim/runtime.hpp"
#include "nblist/cell_list.hpp"

namespace gbpol::baselines {
namespace {

std::vector<Vec3> positions_of(std::span<const Atom> atoms) {
  std::vector<Vec3> pos(atoms.size());
  for (std::size_t i = 0; i < atoms.size(); ++i) pos[i] = atoms[i].pos;
  return pos;
}

// Applies fn(i, j) for unordered pairs i != j within the cutoff (both
// orders delivered), restricted to i in [lo, hi).
template <typename Fn>
void for_pairs(std::span<const Atom> atoms, double cutoff, std::size_t lo,
               std::size_t hi, Fn&& fn) {
  if (cutoff > 0.0) {
    const auto pos = positions_of(atoms);
    const nblist::CellList cells(pos, cutoff);
    const double cut2 = cutoff * cutoff;
    for (std::size_t i = lo; i < hi; ++i) {
      cells.for_candidates(pos[i], [&](std::uint32_t j) {
        if (j == i) return;
        if (distance2(pos[i], pos[j]) <= cut2) fn(i, static_cast<std::size_t>(j));
      });
    }
  } else {
    for (std::size_t i = lo; i < hi; ++i)
      for (std::size_t j = 0; j < atoms.size(); ++j)
        if (j != i) fn(i, j);
  }
}

}  // namespace

std::vector<double> descreening_i4_sums_range(std::span<const Atom> atoms,
                                              std::size_t lo, std::size_t hi,
                                              double cutoff, double dielectric_offset,
                                              double descreen_scale) {
  std::vector<double> sums(atoms.size(), 0.0);
  for_pairs(atoms, cutoff, lo, hi, [&](std::size_t i, std::size_t j) {
    const double rho_i = std::max(atoms[i].radius - dielectric_offset, 0.1);
    const double rho_j = std::max(atoms[j].radius - dielectric_offset, 0.1);
    const double d = distance(atoms[i].pos, atoms[j].pos);
    sums[i] += analytic::clipped_ball_r4_integral(d, descreen_scale * rho_j, rho_i);
  });
  return sums;
}

std::vector<double> descreening_i4_sums(std::span<const Atom> atoms, double cutoff,
                                        double dielectric_offset,
                                        double descreen_scale) {
  return descreening_i4_sums_range(atoms, 0, atoms.size(), cutoff,
                                   dielectric_offset, descreen_scale);
}

double cutoff_epol_range(std::span<const Atom> atoms, std::span<const double> born,
                         const GBConstants& constants, double cutoff,
                         std::size_t lo, std::size_t hi) {
  double pair_sum = 0.0;
  // Ordered pairs with first index in range; for_pairs delivers i fixed to
  // the range and j over all others, which is exactly the ordered-pair set.
  for_pairs(atoms, cutoff, lo, hi, [&](std::size_t i, std::size_t j) {
    const double r2 = distance2(atoms[i].pos, atoms[j].pos);
    pair_sum += atoms[i].charge * atoms[j].charge / f_gb(r2, born[i], born[j]);
  });
  double self_sum = 0.0;
  for (std::size_t i = lo; i < hi; ++i)
    self_sum += atoms[i].charge * atoms[i].charge / born[i];
  return -0.5 * constants.tau() * constants.coulomb_kcal * (pair_sum + self_sum);
}

double cutoff_epol(std::span<const Atom> atoms, std::span<const double> born,
                   const GBConstants& constants, double cutoff) {
  return cutoff_epol_range(atoms, born, constants, cutoff, 0, atoms.size());
}

BaselineResult run_descreening_distributed(std::span<const Atom> atoms,
                                           const BaselineOptions& options,
                                           const RadiusFromSum& radius_from_sum) {
  BaselineResult result;
  const int P = std::max(1, options.ranks);
  const std::size_t n = atoms.size();

  std::vector<double> born_shared(n, 0.0);
  double energy_shared = 0.0;

  mpisim::Runtime::Config rt;
  rt.ranks = P;
  rt.threads_per_rank = 1;
  rt.cluster = options.cluster;

  const auto report = mpisim::Runtime::run(rt, [&](mpisim::Comm& comm) {
    const int r = comm.rank();
    const std::size_t lo = n * static_cast<std::size_t>(r) / static_cast<std::size_t>(P);
    const std::size_t hi = n * static_cast<std::size_t>(r + 1) / static_cast<std::size_t>(P);

    // Phase 1: descreening sums and Born radii for this rank's atom range.
    std::vector<double> born(n, 0.0);
    {
      mpisim::Comm::ComputeRegion region(comm);
      const std::vector<double> sums = descreening_i4_sums_range(
          atoms, lo, hi, options.cutoff, options.dielectric_offset,
          options.descreen_scale);
      for (std::size_t i = lo; i < hi; ++i)
        born[i] = radius_from_sum(sums[i], atoms[i].radius);
    }

    // Phase 2: gather all radii.
    std::vector<int> counts(static_cast<std::size_t>(P)), displs(static_cast<std::size_t>(P));
    for (int k = 0; k < P; ++k) {
      const std::size_t klo = n * static_cast<std::size_t>(k) / static_cast<std::size_t>(P);
      const std::size_t khi = n * static_cast<std::size_t>(k + 1) / static_cast<std::size_t>(P);
      counts[static_cast<std::size_t>(k)] = static_cast<int>(khi - klo);
      displs[static_cast<std::size_t>(k)] = static_cast<int>(klo);
    }
    comm.allgatherv<double>({born.data() + lo, hi - lo}, born, counts, displs);

    // Phase 3: partial energy over this rank's ordered-pair slice.
    double partial[1] = {0.0};
    {
      mpisim::Comm::ComputeRegion region(comm);
      partial[0] = cutoff_epol_range(atoms, born, options.constants, options.cutoff, lo, hi);
    }
    comm.reduce_sum(partial, 0);
    if (r == 0) {
      energy_shared = partial[0];
      std::copy(born.begin(), born.end(), born_shared.begin());
    }
  });

  result.born_radii = std::move(born_shared);
  result.energy = energy_shared;
  result.compute_seconds = report.max_compute_seconds();
  result.comm_seconds = report.max_comm_seconds();
  result.wall_seconds = report.wall_seconds;
  // Replicated per rank: positions/charges/radii + Born array + a modeled
  // nblist (pair count ~ n * (4/3) pi cutoff^3 * density / 2 at protein
  // packing density — the cubic-in-cutoff growth of §II).
  std::size_t nblist_bytes = 0;
  if (options.cutoff > 0.0) {
    constexpr double kDensity = 0.11;  // atoms per cubic Angstrom
    const double pairs_per_atom =
        0.5 * 4.0 / 3.0 * 3.14159265358979 * options.cutoff * options.cutoff *
        options.cutoff * kDensity;
    nblist_bytes = static_cast<std::size_t>(static_cast<double>(n) * pairs_per_atom) *
                   sizeof(std::uint32_t);
  }
  const std::size_t per_rank = n * (sizeof(Atom) + 2 * sizeof(double)) + nblist_bytes;
  result.memory_bytes = static_cast<std::size_t>(P) * per_rank;
  return result;
}

}  // namespace gbpol::baselines
