// OBC (Onufriev-Bashford-Case) GB — the model behind NAMD 2.9's GB
// implementation (paper Table II). Same pairwise descreening sums as HCT,
// fed through the OBC-II tanh rescaling:
//   Psi   = rho~_i * I4_sum / (4 pi)
//   1/R_i = 1/rho~_i - tanh(a*Psi - b*Psi^2 + g*Psi^3) / rho_i,
//   (a, b, g) = (1.0, 0.8, 4.85)
// which keeps deeply buried atoms' radii from overshooting.
#pragma once

#include "baselines/gb_common.hpp"

namespace gbpol::baselines {

BaselineResult run_obc(std::span<const Atom> atoms, const BaselineOptions& options);

}  // namespace gbpol::baselines
