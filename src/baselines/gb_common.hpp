// Shared types for the baseline GB packages (the paper's comparators:
// Amber 12, Gromacs 4.5.3, NAMD 2.9, Tinker 6.0, GBr6 — see DESIGN.md for
// what each maps to in this repository).
#pragma once

#include <cstddef>
#include <vector>

#include "core/gb_params.hpp"
#include "molecule/molecule.hpp"
#include "mpisim/cluster.hpp"

namespace gbpol::baselines {

struct BaselineOptions {
  // Pair cutoff (Angstrom) for both descreening and energy sums; <= 0 means
  // all pairs (no truncation).
  double cutoff = 16.0;
  // Dielectric offset subtracted from intrinsic radii (Amber's 0.09 A).
  double dielectric_offset = 0.09;
  // HCT-style overlap scale factor applied to descreener radii. Real HCT
  // fits these per element against PB references; 0.84 is the flat value
  // that centers the r^4 pairwise models on the exact energies for the
  // synthetic suite (see bench/fig9_energy_values).
  double descreen_scale = 0.84;
  // Ranks for the distributed baselines (1 = serial).
  int ranks = 1;
  mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();
  GBConstants constants;
};

struct BaselineResult {
  std::vector<double> born_radii;  // atom order
  double energy = 0.0;             // kcal/mol
  double compute_seconds = 0.0;    // modeled makespan, compute part
  double comm_seconds = 0.0;       // modeled communication
  double wall_seconds = 0.0;
  std::size_t memory_bytes = 0;    // modeled, replicated across ranks

  double modeled_seconds() const { return compute_seconds + comm_seconds; }
};

}  // namespace gbpol::baselines
