// Package registry — the contents of the paper's Table II: every compared
// implementation with its GB model and parallelism class, mapped to the
// module in this repository that stands in for it.
#pragma once

#include <span>
#include <string_view>

namespace gbpol::baselines {

struct PackageInfo {
  std::string_view name;         // harness identifier
  std::string_view paper_name;   // package in the paper's Table II
  std::string_view gb_model;     // HCT / OBC / STILL
  std::string_view parallelism;  // Serial / Shared / Distributed / Hybrid
};

// All packages, octree drivers first (same order as Table II's two blocks).
std::span<const PackageInfo> package_table();

// Lookup by harness identifier; nullptr if unknown.
const PackageInfo* find_package(std::string_view name);

}  // namespace gbpol::baselines
