#include "baselines/gbr6_volume.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "baselines/descreening.hpp"
#include "core/analytic.hpp"
#include "core/naive.hpp"
#include "nblist/cell_list.hpp"
#include "support/timer.hpp"

namespace gbpol::baselines {

BaselineResult run_gbr6_volume(std::span<const Atom> atoms,
                               const BaselineOptions& options) {
  BaselineResult result;
  WallTimer wall;
  ThreadCpuTimer cpu;
  const std::size_t n = atoms.size();
  result.born_radii.assign(n, 0.0);

  std::vector<Vec3> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = atoms[i].pos;

  const double offset = options.dielectric_offset;
  const double scale = options.descreen_scale;
  const double cut2 = options.cutoff > 0.0 ? options.cutoff * options.cutoff : 0.0;

  auto descreen = [&](std::size_t i, std::size_t j, double& sum) {
    const double rho_i = std::max(atoms[i].radius - offset, 0.1);
    const double rho_j = std::max(atoms[j].radius - offset, 0.1);
    const double d = distance(atoms[i].pos, atoms[j].pos);
    sum += analytic::clipped_ball_r6_integral(d, scale * rho_j, rho_i);
  };

  std::vector<double> sums(n, 0.0);
  if (options.cutoff > 0.0) {
    const nblist::CellList cells(pos, options.cutoff);
    for (std::size_t i = 0; i < n; ++i) {
      cells.for_candidates(pos[i], [&](std::uint32_t j) {
        if (j == i) return;
        if (distance2(pos[i], pos[j]) <= cut2) descreen(i, j, sums[i]);
      });
    }
  } else {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) descreen(i, j, sums[i]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double rho_t = std::max(atoms[i].radius - offset, 0.1);
    const double inv_r3 =
        1.0 / (rho_t * rho_t * rho_t) - 3.0 * sums[i] / (4.0 * std::numbers::pi);
    constexpr double kMinInv3 =
        1.0 / (kBornRadiusMax * kBornRadiusMax * kBornRadiusMax);
    const double r = std::pow(std::max(inv_r3, kMinInv3), -1.0 / 3.0);
    result.born_radii[i] = std::clamp(r, rho_t, kBornRadiusMax);
  }

  result.energy =
      cutoff_epol(atoms, result.born_radii, options.constants, options.cutoff);

  result.compute_seconds = cpu.seconds();
  result.wall_seconds = wall.seconds();
  result.memory_bytes = n * (sizeof(Atom) + 2 * sizeof(double));
  if (options.cutoff > 0.0) {
    constexpr double kDensity = 0.11;
    const double pairs_per_atom = 0.5 * 4.0 / 3.0 * std::numbers::pi *
                                  options.cutoff * options.cutoff * options.cutoff *
                                  kDensity;
    result.memory_bytes +=
        static_cast<std::size_t>(static_cast<double>(n) * pairs_per_atom) * 4;
  }
  return result;
}

}  // namespace gbpol::baselines
