#include "baselines/hct.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "baselines/descreening.hpp"
#include "core/naive.hpp"

namespace gbpol::baselines {

BaselineResult run_hct(std::span<const Atom> atoms, const BaselineOptions& options) {
  const double offset = options.dielectric_offset;
  return run_descreening_distributed(
      atoms, options, [offset](double i4_sum, double rho) {
        const double rho_t = std::max(rho - offset, 0.1);
        const double inv_r = 1.0 / rho_t - i4_sum / (4.0 * std::numbers::pi);
        const double r = inv_r > 1.0 / kBornRadiusMax ? 1.0 / inv_r : kBornRadiusMax;
        return std::clamp(r, rho_t, kBornRadiusMax);
      });
}

}  // namespace gbpol::baselines
