// Still-style empirically parameterized GB — the Tinker 6.0 stand-in
// (paper Table II: Tinker uses the STILL model with OpenMP parallelism).
//
// Tinker's Born radii come from Still's 1990 empirical scheme, whose
// parameterization differs from volume/surface integration; the paper's
// Fig. 9 shows Tinker reporting roughly 70% of the naive energy magnitude.
// This implementation reproduces that behaviour class: descreening-based
// radii re-scaled by an empirical inflation factor (Still's fit produces
// systematically larger radii than the integral models), which shrinks
// |E_pol| by roughly the same factor — parallelised over the shared-memory
// work-stealing pool, like Tinker's OpenMP loops.
#pragma once

#include "baselines/gb_common.hpp"

namespace gbpol::baselines {

struct StillEmpiricalOptions : BaselineOptions {
  // Empirical Born-radius inflation; 1.4 reproduces Fig. 9's ~70% energy.
  double radius_inflation = 1.4;
  int threads = 1;  // shared-memory workers
};

BaselineResult run_still_empirical(std::span<const Atom> atoms,
                                   const StillEmpiricalOptions& options);

}  // namespace gbpol::baselines
