#include "baselines/registry.hpp"

namespace gbpol::baselines {
namespace {

constexpr PackageInfo kPackages[] = {
    {"oct_cilk", "OCT_CILK", "STILL", "Shared (work stealing)"},
    {"oct_mpi", "OCT_MPI", "STILL", "Distributed (mpisim)"},
    {"oct_hybrid", "OCT_MPI+CILK", "STILL", "Distributed+Shared (hybrid)"},
    {"naive", "Naive", "STILL", "Serial"},
    {"hct_amber", "Amber 12", "HCT", "Distributed (mpisim)"},
    {"hct_gromacs", "Gromacs 4.5.3", "HCT", "Distributed (mpisim)"},
    {"obc_namd", "NAMD 2.9", "OBC", "Distributed (mpisim)"},
    {"still_tinker", "Tinker 6.0", "STILL", "Shared (work stealing)"},
    {"gbr6", "GBr6", "STILL", "Serial"},
};

}  // namespace

std::span<const PackageInfo> package_table() { return kPackages; }

const PackageInfo* find_package(std::string_view name) {
  for (const PackageInfo& info : kPackages)
    if (info.name == name) return &info;
  return nullptr;
}

}  // namespace gbpol::baselines
