// HCT (Hawkins-Cramer-Truhlar) pairwise-descreening GB — the model behind
// Amber 12's and Gromacs 4.5.3's GB implementations (paper Table II). Born
// radii come from the Coulomb-field r^4 volume integral approximated by
// overlap-scaled pairwise descreening:
//   1/R_i = 1/rho~_i - (1/4pi) * sum_j I4(d_ij, S*rho~_j, clipped at rho~_i)
// with rho~ = rho - dielectric_offset. Energy is the Still pair sum with a
// cutoff, distributed over mpisim ranks with atom-based division — the
// traditional packages' parallel scheme.
#pragma once

#include "baselines/gb_common.hpp"

namespace gbpol::baselines {

BaselineResult run_hct(std::span<const Atom> atoms, const BaselineOptions& options);

}  // namespace gbpol::baselines
