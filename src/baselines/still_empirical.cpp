#include "baselines/still_empirical.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "baselines/descreening.hpp"
#include "core/naive.hpp"
#include "support/timer.hpp"
#include "ws/parallel_for.hpp"
#include "ws/scheduler.hpp"

namespace gbpol::baselines {

BaselineResult run_still_empirical(std::span<const Atom> atoms,
                                   const StillEmpiricalOptions& options) {
  BaselineResult result;
  WallTimer wall;
  const int threads = std::max(1, options.threads);
  ws::Scheduler sched(threads);
  const std::size_t n = atoms.size();
  const std::size_t grain = std::max<std::size_t>(1, n / (16 * static_cast<std::size_t>(threads)));

  result.born_radii.assign(n, 0.0);
  const double offset = options.dielectric_offset;
  const double inflation = options.radius_inflation;

  sched.reset_stats();
  ws::parallel_for(sched, 0, n, grain, [&](std::size_t lo, std::size_t hi) {
    const auto sums = descreening_i4_sums_range(atoms, lo, hi, options.cutoff,
                                                offset, options.descreen_scale);
    for (std::size_t i = lo; i < hi; ++i) {
      const double rho_t = std::max(atoms[i].radius - offset, 0.1);
      const double inv_r = 1.0 / rho_t - sums[i] / (4.0 * std::numbers::pi);
      const double r = inv_r > 1.0 / kBornRadiusMax ? 1.0 / inv_r : kBornRadiusMax;
      // Still's empirical parameterization: inflated radii vs the integral
      // models (this is what makes Tinker's energies ~70% of naive).
      result.born_radii[i] = std::clamp(inflation * r, rho_t, kBornRadiusMax);
    }
  });
  result.compute_seconds += sched.stats().max_busy();

  sched.reset_stats();
  result.energy = ws::parallel_reduce<double>(
      sched, 0, n, grain,
      [&](std::size_t lo, std::size_t hi) {
        return cutoff_epol_range(atoms, result.born_radii, options.constants,
                                 options.cutoff, lo, hi);
      },
      [](double l, double r) { return l + r; });
  result.compute_seconds += sched.stats().max_busy();

  result.wall_seconds = wall.seconds();
  // Shared memory: one copy of everything plus the modeled nblist.
  result.memory_bytes = n * (sizeof(Atom) + sizeof(double));
  if (options.cutoff > 0.0) {
    constexpr double kDensity = 0.11;
    const double pairs_per_atom = 0.5 * 4.0 / 3.0 * std::numbers::pi *
                                  options.cutoff * options.cutoff * options.cutoff *
                                  kDensity;
    result.memory_bytes +=
        static_cast<std::size_t>(static_cast<double>(n) * pairs_per_atom) * 4;
  }
  return result;
}

}  // namespace gbpol::baselines
