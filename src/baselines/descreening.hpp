// Pairwise-descreening machinery shared by the HCT / OBC / Still-empirical
// baselines: for every atom i, the sum over neighbours j of the analytic
// integral of 1/|r - x_i|^4 over atom j's (scaled, offset) ball clipped to
// the outside of atom i's own ball — the Coulomb-field counterpart of the
// surface integrals the octree algorithms compute.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "baselines/gb_common.hpp"
#include "core/gb_params.hpp"
#include "molecule/molecule.hpp"

namespace gbpol::baselines {

// I4 descreening sums (one per atom). cutoff <= 0 disables truncation.
std::vector<double> descreening_i4_sums(std::span<const Atom> atoms,
                                        double cutoff, double dielectric_offset,
                                        double descreen_scale);
// Same, restricted to atoms [lo, hi) (for distributed atom division).
std::vector<double> descreening_i4_sums_range(std::span<const Atom> atoms,
                                              std::size_t lo, std::size_t hi,
                                              double cutoff, double dielectric_offset,
                                              double descreen_scale);

// Still-model pair energy with cutoff truncation (the traditional packages'
// scheme; cutoff <= 0 gives the exact Eq. 2 sum). Ordered pairs + self terms.
double cutoff_epol(std::span<const Atom> atoms, std::span<const double> born,
                   const GBConstants& constants, double cutoff);
// Pair terms where the FIRST index lies in [lo, hi) — partitions the total
// ordered-pair sum across ranks.
double cutoff_epol_range(std::span<const Atom> atoms, std::span<const double> born,
                         const GBConstants& constants, double cutoff,
                         std::size_t lo, std::size_t hi);

// Distributed driver shared by the descreening-based packages: atom-based
// work division over mpisim ranks (the division Amber/Gromacs use), with
// radii produced from the per-atom I4 sums by `radius_from_sum(sum, rho_i)`.
using RadiusFromSum = std::function<double(double i4_sum, double intrinsic_radius)>;
BaselineResult run_descreening_distributed(std::span<const Atom> atoms,
                                           const BaselineOptions& options,
                                           const RadiusFromSum& radius_from_sum);

}  // namespace gbpol::baselines
