// Volume-based r^6 GB — the GBr6 stand-in (Tjong & Zhou 2007; paper Table
// II: serial, STILL energy model). Where the octree algorithms integrate
// 1/|r-x|^6 over the molecular SURFACE (Eq. 4), GBr6 integrates over the
// solvent VOLUME, approximated here by exact pairwise ball descreening:
//   1/R_i^3 = 1/rho~_i^3 - (3/4pi) sum_j S * I6(d_ij, S*rho~_j, clip rho~_i)
// with the closed-form clipped-ball integral of core/analytic.hpp. Serial,
// as in the paper.
#pragma once

#include "baselines/gb_common.hpp"

namespace gbpol::baselines {

BaselineResult run_gbr6_volume(std::span<const Atom> atoms,
                               const BaselineOptions& options);

}  // namespace gbpol::baselines
