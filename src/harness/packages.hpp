// By-name package dispatch for the figure benches: one call signature for
// every row of the paper's Table II, so fig8/fig9-style loops can sweep the
// whole package list over the whole molecule suite.
#pragma once

#include <string_view>
#include <vector>

#include "baselines/gb_common.hpp"
#include "core/drivers.hpp"
#include "core/prepared.hpp"

namespace gbpol::harness {

struct PackageEnv {
  // Total cores of the modeled single node (paper: 12). Distributed packages
  // run `cores` ranks; shared packages run `cores` threads; serial packages
  // use one.
  int cores = 12;
  // Threads per rank for oct_hybrid (paper: 2 ranks x 6 threads per node).
  int hybrid_threads = 6;

  ApproxParams approx;
  GBConstants constants;
  mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  // Cutoffs for the traditional packages (<= 0 = all pairs), set to mirror
  // the real packages' GB defaults: Amber GB runs effectively uncut
  // (cut=999), NAMD/Tinker/GBr6 evaluate all pairs too, while Gromacs
  // truncates at rgbradii ~ 1 nm — which is why Gromacs was the only
  // traditional package within an order of magnitude of the octree codes in
  // the paper's Fig. 8.
  double amber_cutoff = 0.0;
  double gromacs_cutoff = 12.0;
  double namd_cutoff = 0.0;
  double tinker_cutoff = 0.0;
  // GBr6's r^-6 descreening kernel decays two powers faster than the
  // Coulomb-field r^-4 one, so truncation is physically benign — this keeps
  // the serial GBr6 within the same performance class as 12-rank Amber,
  // matching the paper's Fig. 8 ordering.
  double gbr6_cutoff = 12.0;
};

struct PackageRun {
  double energy = 0.0;
  double modeled_seconds = 0.0;  // makespan on the modeled cluster
  double wall_seconds = 0.0;
  std::size_t memory_bytes = 0;
  std::vector<double> born_radii;  // atom order (empty if n/a)
};

// `name` must be one of baselines::package_table()'s identifiers. Throws
// std::invalid_argument otherwise.
PackageRun run_package(std::string_view name, const Molecule& mol,
                       const surface::SurfaceQuadrature& quad, const Prepared& prep,
                       const PackageEnv& env);

}  // namespace gbpol::harness
