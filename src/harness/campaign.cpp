#include "harness/campaign.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <ios>
#include <new>
#include <stdexcept>
#include <thread>

#include "molecule/io.hpp"

namespace gbpol::harness {

namespace {

bool contains_ci(const std::string& haystack, std::string_view needle) {
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char a, char b) {
        return std::tolower(static_cast<unsigned char>(a)) ==
               std::tolower(static_cast<unsigned char>(b));
      });
  return it != haystack.end();
}

}  // namespace

Campaign::Campaign(CampaignConfig config)
    : config_(std::move(config)), journal_(config_.journal_path) {
  config_.max_attempts = std::max(1, config_.max_attempts);
  // Fold the replayed journal into per-job state. Records are already in
  // seq order; the last record per job wins, and the attempt counter keeps
  // counting across restarts so a job cannot dodge quarantine by crashing
  // the campaign between its retries.
  for (const ckpt::JournalRecord& rec : journal_.records()) {
    JobStatus& st = jobs_[rec.job];
    st.state = rec.state;
    st.attempts = std::max(st.attempts, rec.attempt);
    st.error = rec.error;
    st.payload = rec.detail;
    st.from_journal = true;
  }
}

const JobStatus* Campaign::find(const std::string& job) const {
  const auto it = jobs_.find(job);
  return it == jobs_.end() ? nullptr : &it->second;
}

int Campaign::completed() const {
  int n = 0;
  for (const auto& [job, st] : jobs_)
    if (st.state == ckpt::JobState::kDone) ++n;
  return n;
}

int Campaign::skipped() const {
  int n = 0;
  for (const auto& [job, st] : jobs_)
    if (st.from_journal && (st.state == ckpt::JobState::kDone ||
                            st.state == ckpt::JobState::kQuarantined))
      ++n;
  return n;
}

int Campaign::quarantined() const {
  int n = 0;
  for (const auto& [job, st] : jobs_)
    if (st.state == ckpt::JobState::kQuarantined) ++n;
  return n;
}

ErrorClass Campaign::classify(const std::exception& e) {
  if (dynamic_cast<const CorruptionError*>(&e) != nullptr)
    return ErrorClass::kCorruption;
  if (dynamic_cast<const IoError*>(&e) != nullptr) return ErrorClass::kIo;
  if (dynamic_cast<const std::ios_base::failure*>(&e) != nullptr)
    return ErrorClass::kIo;
  if (dynamic_cast<const std::filesystem::filesystem_error*>(&e) != nullptr)
    return ErrorClass::kIo;
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr)
    return ErrorClass::kOom;
  if (dynamic_cast<const std::length_error*>(&e) != nullptr)
    return ErrorClass::kOom;
  const std::string msg = e.what();
  // Corruption outranks the other string classes: a checksum-mismatch
  // message often also mentions the payload that went bad.
  if (contains_ci(msg, "corrupt") || contains_ci(msg, "checksum") ||
      contains_ci(msg, "crc"))
    return ErrorClass::kCorruption;
  if (contains_ci(msg, "timeout") || contains_ci(msg, "timed out") ||
      contains_ci(msg, "stall"))
    return ErrorClass::kTimeout;
  if (contains_ci(msg, "nan") || contains_ci(msg, "inf") ||
      contains_ci(msg, "finite") || contains_ci(msg, "numerical"))
    return ErrorClass::kNumerical;
  return ErrorClass::kFault;
}

const JobStatus& Campaign::record_queued(const std::string& job) {
  const auto [it, inserted] = jobs_.try_emplace(job);
  if (inserted) {
    ckpt::JournalRecord queued;
    queued.state = ckpt::JobState::kQueued;
    queued.job = job;
    journal_.append(queued);
  }
  return it->second;
}

const JobStatus& Campaign::run(const std::string& job,
                               const std::function<std::string()>& fn) {
  const auto [it, inserted] = jobs_.try_emplace(job);
  JobStatus& st = it->second;
  if (st.state == ckpt::JobState::kDone ||
      st.state == ckpt::JobState::kQuarantined)
    return st;  // settled — skip

  if (inserted) {
    ckpt::JournalRecord queued;
    queued.state = ckpt::JobState::kQueued;
    queued.job = job;
    journal_.append(queued);
  }
  st.from_journal = false;

  while (true) {
    ++st.attempts;
    if (st.attempts > 1 && config_.backoff_base_seconds > 0.0) {
      const double backoff = std::min(
          config_.backoff_cap_seconds,
          config_.backoff_base_seconds *
              static_cast<double>(1u << std::min(st.attempts - 2, 20)));
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    ckpt::JournalRecord running;
    running.state = ckpt::JobState::kRunning;
    running.attempt = st.attempts;
    running.job = job;
    journal_.append(running);
    try {
      st.payload = fn();
      st.state = ckpt::JobState::kDone;
      st.error = ErrorClass::kNone;
      ckpt::JournalRecord done;
      done.state = ckpt::JobState::kDone;
      done.attempt = st.attempts;
      done.job = job;
      done.detail = st.payload;
      journal_.append(done);
      return st;
    } catch (const std::exception& e) {
      st.error = classify(e);
      st.payload = e.what();
    } catch (...) {
      st.error = ErrorClass::kFault;
      st.payload = "unknown exception";
    }
    const bool quarantine = st.attempts >= config_.max_attempts;
    st.state = quarantine ? ckpt::JobState::kQuarantined
                          : ckpt::JobState::kFailed;
    ckpt::JournalRecord failed;
    failed.state = st.state;
    failed.attempt = st.attempts;
    failed.error = st.error;
    failed.job = job;
    failed.detail = st.payload;
    journal_.append(failed);
    if (quarantine) return st;
  }
}

}  // namespace gbpol::harness
