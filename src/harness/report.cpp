#include "harness/report.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

namespace gbpol::harness {

void print_figure_header(std::string_view figure_id, std::string_view title) {
  std::cout << "\n=== " << figure_id << ": " << title << " ===\n"
            << "(substituted environment: in-process cluster simulation; see DESIGN.md)\n";
}

void print_cluster_model(const mpisim::ClusterModel& cluster) {
  std::cout << "modeled cluster: " << cluster.nodes << " nodes x "
            << cluster.sockets_per_node << " sockets x " << cluster.cores_per_socket
            << " cores; t_s(intra/socket/node) = " << cluster.latency_s[0] << "/"
            << cluster.latency_s[1] << "/" << cluster.latency_s[2]
            << " s; bw = " << 1.0 / cluster.per_byte_s[0] / 1e9 << "/"
            << 1.0 / cluster.per_byte_s[1] / 1e9 << "/"
            << 1.0 / cluster.per_byte_s[2] / 1e9 << " GB/s\n";
}

void emit_table(const Table& table, std::string_view name) {
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) {
    std::cerr << "note: could not create bench_out/: " << ec.message() << '\n';
    return;
  }
  const std::string path = "bench_out/" + std::string(name) + ".csv";
  std::ofstream csv(path);
  if (!csv) {
    std::cerr << "note: could not write " << path << '\n';
    return;
  }
  table.print_csv(csv);
  std::cout << "[csv] " << path << "\n";
}

}  // namespace gbpol::harness
