// Uniform reporting for the figure benches: a header naming the reproduced
// figure/table, the modeled cluster (the paper's Table I analogue), and
// aligned result tables (optionally mirrored to CSV under bench_out/).
#pragma once

#include <string_view>

#include "mpisim/cluster.hpp"
#include "support/table.hpp"

namespace gbpol::harness {

// Prints "=== <figure id>: <title> ===" plus the substitution reminder.
void print_figure_header(std::string_view figure_id, std::string_view title);

// Table I analogue: the modeled cluster's parameters.
void print_cluster_model(const mpisim::ClusterModel& cluster);

// Prints the table to stdout and mirrors it to bench_out/<name>.csv
// (directory created on demand; CSV failures are reported, not fatal).
void emit_table(const Table& table, std::string_view name);

}  // namespace gbpol::harness
