// Benchmark-harness utilities: environment knobs and the repetition protocol
// (the paper runs each configuration 20 times and plots min/max — Fig. 6).
#pragma once

#include <functional>
#include <string>

#include "support/stats.hpp"

namespace gbpol::harness {

// GBPOL_BENCH_SCALE: multiplies the default virus-shell sizes (1.0 = the
// single-core-budget defaults documented in DESIGN.md).
double env_scale();
// GBPOL_REPS: repetition count override.
int env_reps(int default_reps);
// Generic env readers with defaults.
int env_int(const char* name, int default_value);
double env_double(const char* name, double default_value);

struct RepeatedTiming {
  Summary modeled;  // modeled cluster seconds across repetitions
  Summary wall;     // wall seconds across repetitions
};

// Runs `run` `reps` times; `run` returns (modeled_seconds, wall_seconds).
RepeatedTiming repeat_timed(int reps,
                            const std::function<std::pair<double, double>()>& run);

}  // namespace gbpol::harness
