// Supervised, resumable experiment campaigns for the fig*/ablation_ sweeps.
//
// A Campaign wraps a sequence of named jobs (one per sweep point). Each job
// transition is recorded in an append-only ckpt::Journal, so a campaign that
// is killed mid-sweep resumes on restart: jobs whose journal says `done` are
// skipped and their stored payload is returned without recomputation; jobs
// that were `running` or `failed` when the process died are re-run. Failures
// are retried with capped exponential backoff; a job that fails
// `max_attempts` times is quarantined (deterministic failure — retrying will
// not help) and never blocks the rest of the sweep. Every failure is folded
// into the shared ErrorClass taxonomy (support/error_class.hpp) so policy
// and reporting dispatch on a closed set.
#pragma once

#include <exception>
#include <functional>
#include <map>
#include <string>

#include "ckpt/journal.hpp"
#include "support/error_class.hpp"

namespace gbpol::harness {

struct CampaignConfig {
  // Journal file path; empty keeps the campaign in memory (no resume).
  std::string journal_path;
  // Attempts per job before it is quarantined (>= 1).
  int max_attempts = 3;
  // Backoff before retry k (k >= 2): min(cap, base * 2^(k-2)) seconds.
  // base <= 0 disables sleeping (tests).
  double backoff_base_seconds = 0.0;
  double backoff_cap_seconds = 1.0;
};

struct JobStatus {
  ckpt::JobState state = ckpt::JobState::kQueued;
  int attempts = 0;             // attempts so far (across restarts)
  ErrorClass error = ErrorClass::kNone;
  std::string payload;          // done: job result; else: last failure reason
  bool from_journal = false;    // state came from replay, not from this run
};

class Campaign {
 public:
  explicit Campaign(CampaignConfig config = {});

  // Runs `fn` for `job` unless the journal already settled it:
  //   done        -> skipped; the stored payload is returned as-is
  //   quarantined -> skipped; re-running a deterministic failure is pointless
  // Otherwise runs (and retries) `fn`, journaling every transition. `fn`
  // returns the job's payload string and reports failure by throwing.
  const JobStatus& run(const std::string& job,
                       const std::function<std::string()>& fn);

  // Journals `job` as queued without running it — the accept half of a
  // queue/serve split (serve/service.hpp accepts requests long before it
  // drains them, and a crash in between must replay the accepted set).
  // Idempotent: a job already known (this run or replay) is left untouched,
  // so a later run(job, fn) on a freshly-queued job does not double-journal
  // the kQueued record. Returns the job's current status.
  const JobStatus& record_queued(const std::string& job);

  // nullptr if the job was never seen (neither journal nor this run).
  const JobStatus* find(const std::string& job) const;

  int completed() const;    // jobs in state done (run or replayed)
  int skipped() const;      // done/quarantined jobs settled purely by replay
  int quarantined() const;
  bool journal_healthy() const { return journal_.healthy(); }
  const ckpt::Journal& journal() const { return journal_; }

  // Folds an exception into the ErrorClass taxonomy: CorruptionError (and
  // messages naming corruption/checksum/CRC) -> kCorruption, retried then
  // quarantined like any other job failure; IoError and stream / filesystem
  // errors -> kIo; bad_alloc/length_error -> kOom; messages naming a stall
  // or timeout -> kTimeout; messages naming NaN/Inf or non-finite values ->
  // kNumerical; anything else -> kFault.
  static ErrorClass classify(const std::exception& e);

 private:
  CampaignConfig config_;
  ckpt::Journal journal_;
  std::map<std::string, JobStatus> jobs_;
};

}  // namespace gbpol::harness
