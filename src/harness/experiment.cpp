#include "harness/experiment.hpp"

#include <cstdlib>
#include <vector>

namespace gbpol::harness {

int env_int(const char* name, int default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return std::atoi(value);
}

double env_double(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  return std::atof(value);
}

double env_scale() { return env_double("GBPOL_BENCH_SCALE", 1.0); }

int env_reps(int default_reps) { return env_int("GBPOL_REPS", default_reps); }

RepeatedTiming repeat_timed(int reps,
                            const std::function<std::pair<double, double>()>& run) {
  std::vector<double> modeled, wall;
  modeled.reserve(static_cast<std::size_t>(reps));
  wall.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto [m, w] = run();
    modeled.push_back(m);
    wall.push_back(w);
  }
  return {summarize(modeled), summarize(wall)};
}

}  // namespace gbpol::harness
