#include "harness/packages.hpp"

#include <stdexcept>
#include <string>

#include "baselines/gbr6_volume.hpp"
#include "baselines/hct.hpp"
#include "baselines/obc.hpp"
#include "baselines/still_empirical.hpp"
#include "core/engine.hpp"
#include "core/naive.hpp"

namespace gbpol::harness {
namespace {

PackageRun from_driver(RunResult&& r, const Prepared& prep) {
  PackageRun run;
  run.energy = r.energy;
  run.modeled_seconds = r.modeled_seconds();
  run.wall_seconds = r.wall_seconds;
  run.memory_bytes = r.replicated_bytes;
  run.born_radii = prep.to_original_order(r.born_sorted);
  return run;
}

PackageRun from_baseline(baselines::BaselineResult&& r) {
  PackageRun run;
  run.energy = r.energy;
  run.modeled_seconds = r.modeled_seconds();
  run.wall_seconds = r.wall_seconds;
  run.memory_bytes = r.memory_bytes;
  run.born_radii = std::move(r.born_radii);
  return run;
}

baselines::BaselineOptions baseline_options(const PackageEnv& env, double cutoff,
                                            int ranks) {
  baselines::BaselineOptions opts;
  opts.cutoff = cutoff;
  opts.ranks = ranks;
  opts.cluster = env.cluster;
  opts.constants = env.constants;
  return opts;
}

}  // namespace

PackageRun run_package(std::string_view name, const Molecule& mol,
                       const surface::SurfaceQuadrature& quad, const Prepared& prep,
                       const PackageEnv& env) {
  if (name == "naive") {
    const NaiveResult r = run_naive(mol, quad, env.constants);
    PackageRun run;
    run.energy = r.energy;
    run.modeled_seconds = r.born_seconds + r.energy_seconds;
    run.wall_seconds = run.modeled_seconds;
    run.memory_bytes = mol.size() * (sizeof(Atom) + sizeof(double)) +
                       quad.size() * (2 * sizeof(Vec3) + sizeof(double));
    run.born_radii = r.born_radii;
    return run;
  }
  const Engine engine(prep, env.approx, env.constants);
  RunOptions options;
  options.traversal = env.approx.traversal;
  options.cluster = env.cluster;
  if (name == "oct_serial") {
    options.mode = EngineMode::kSerial;
    return from_driver(engine.run(options), prep);
  }
  if (name == "oct_cilk") {
    options.mode = EngineMode::kCilk;
    options.threads_per_rank = env.cores;
    return from_driver(engine.run(options), prep);
  }
  if (name == "oct_mpi") {
    options.mode = EngineMode::kDistributed;
    options.ranks = env.cores;
    return from_driver(engine.run(options), prep);
  }
  if (name == "oct_hybrid") {
    options.mode = EngineMode::kDistributed;
    options.threads_per_rank = std::max(1, env.hybrid_threads);
    options.ranks = std::max(1, env.cores / options.threads_per_rank);
    return from_driver(engine.run(options), prep);
  }
  if (name == "hct_amber") {
    return from_baseline(
        run_hct(mol.atoms(), baseline_options(env, env.amber_cutoff, env.cores)));
  }
  if (name == "hct_gromacs") {
    return from_baseline(
        run_hct(mol.atoms(), baseline_options(env, env.gromacs_cutoff, env.cores)));
  }
  if (name == "obc_namd") {
    return from_baseline(
        run_obc(mol.atoms(), baseline_options(env, env.namd_cutoff, env.cores)));
  }
  if (name == "still_tinker") {
    baselines::StillEmpiricalOptions opts;
    static_cast<baselines::BaselineOptions&>(opts) =
        baseline_options(env, env.tinker_cutoff, 1);
    opts.threads = env.cores;
    return from_baseline(run_still_empirical(mol.atoms(), opts));
  }
  if (name == "gbr6") {
    baselines::BaselineOptions opts = baseline_options(env, env.gbr6_cutoff, 1);
    // The r^-6 kernel weights nearby volume much more than r^-4, so the
    // pairwise-union double counting is weaker: the centered flat scale for
    // the volume-r6 model sits near 1.0 (vs 0.84 for HCT).
    opts.descreen_scale = 1.0;
    return from_baseline(run_gbr6_volume(mol.atoms(), opts));
  }
  throw std::invalid_argument("unknown package: " + std::string(name));
}

}  // namespace gbpol::harness
