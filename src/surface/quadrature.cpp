#include "surface/quadrature.hpp"

#include "surface/density.hpp"
#include "surface/dunavant.hpp"
#include "surface/march_tetra.hpp"

namespace gbpol::surface {

SurfaceQuadrature quadrature_from_mesh(const TriangleMesh& mesh, int degree) {
  const auto rule = dunavant_rule(degree);
  SurfaceQuadrature quad;
  quad.points.reserve(mesh.triangles.size() * rule.size());
  quad.normals.reserve(mesh.triangles.size() * rule.size());
  quad.weights.reserve(mesh.triangles.size() * rule.size());

  for (const Triangle& tri : mesh.triangles) {
    const Vec3 an = tri.area_normal();
    const double area = 0.5 * norm(an);
    if (area <= 0.0) continue;
    const Vec3 n = an / (2.0 * area);
    for (const BarycentricPoint& bp : rule) {
      quad.points.push_back(tri.a * bp.l1 + tri.b * bp.l2 + tri.c * bp.l3);
      quad.normals.push_back(n);
      quad.weights.push_back(bp.weight * area);
    }
  }
  return quad;
}

SurfaceQuadrature molecular_surface_quadrature(const Molecule& mol,
                                               const QuadratureParams& params) {
  DensityField field(mol, {.kappa = params.kappa, .tolerance = 1e-4});
  const TriangleMesh mesh =
      march_tetrahedra(field, {.grid_spacing = params.grid_spacing, .iso_value = 1.0});
  return quadrature_from_mesh(mesh, params.dunavant_degree);
}

}  // namespace gbpol::surface
