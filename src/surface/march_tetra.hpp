// Marching-tetrahedra isosurface extraction over a uniform grid.
//
// Chosen over classic marching cubes because the tetrahedral decomposition
// needs no 256-entry case table and cannot produce ambiguous (cracked)
// facets: every cube is split into 6 tetrahedra sharing a main diagonal, and
// each tetrahedron contributes 0, 1 or 2 triangles. Triangles are oriented
// so their geometric normal points OUT of the molecule (toward decreasing
// density), which is the orientation Eq. (4)'s surface integral requires.
#pragma once

#include "surface/density.hpp"
#include "surface/mesh.hpp"

namespace gbpol::surface {

struct MarchParams {
  double grid_spacing = 1.5;  // Angstrom
  double iso_value = 1.0;
};

TriangleMesh march_tetrahedra(const DensityField& field, const MarchParams& params = {});

}  // namespace gbpol::surface
