// Analytic sphere quadrature (Fibonacci lattice).
//
// For a spherical "molecule" the Born-radius integrals of Eq. (4) have closed
// forms (see core/analytic.hpp), so a sphere sampled exactly — rather than
// through the density/marching pipeline — is the reference input for the
// library's property tests and convergence studies.
#pragma once

#include <cstddef>

#include "support/vec3.hpp"
#include "surface/quadrature.hpp"

namespace gbpol::surface {

// N near-uniform points on the sphere of radius `radius` centered at
// `center`; weights are 4*pi*r^2 / N, normals point radially outward.
SurfaceQuadrature fibonacci_sphere_quadrature(std::size_t n, const Vec3& center,
                                              double radius);

}  // namespace gbpol::surface
