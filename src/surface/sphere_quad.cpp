#include "surface/sphere_quad.hpp"

#include <cmath>
#include <numbers>

namespace gbpol::surface {

SurfaceQuadrature fibonacci_sphere_quadrature(std::size_t n, const Vec3& center,
                                              double radius) {
  SurfaceQuadrature quad;
  quad.points.reserve(n);
  quad.normals.reserve(n);
  quad.weights.reserve(n);

  constexpr double kGoldenAngle = 2.399963229728653;  // pi * (3 - sqrt(5))
  const double area_per_point =
      4.0 * std::numbers::pi * radius * radius / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // z marches through (-1, 1) in equal-area bands; phi spirals by the
    // golden angle so neighbouring bands never align.
    const double z = 1.0 - (2.0 * static_cast<double>(i) + 1.0) / static_cast<double>(n);
    const double rho = std::sqrt(std::max(0.0, 1.0 - z * z));
    const double phi = kGoldenAngle * static_cast<double>(i);
    const Vec3 dir{rho * std::cos(phi), rho * std::sin(phi), z};
    quad.points.push_back(center + dir * radius);
    quad.normals.push_back(dir);
    quad.weights.push_back(area_per_point);
  }
  return quad;
}

}  // namespace gbpol::surface
