#include "surface/dunavant.hpp"

#include <algorithm>

namespace gbpol::surface {
namespace {

// Coefficients from Dunavant, "High degree efficient symmetrical Gaussian
// quadrature rules for the triangle", IJNME 21 (1985). Weights sum to 1.

constexpr BarycentricPoint kDegree1[] = {
    {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 1.0},
};

constexpr BarycentricPoint kDegree2[] = {
    {2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0, 1.0 / 3.0},
    {1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0, 1.0 / 3.0},
    {1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0, 1.0 / 3.0},
};

constexpr BarycentricPoint kDegree3[] = {
    {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, -0.5625},
    {0.6, 0.2, 0.2, 0.520833333333333333},
    {0.2, 0.6, 0.2, 0.520833333333333333},
    {0.2, 0.2, 0.6, 0.520833333333333333},
};

constexpr double kD4a = 0.816847572980459;
constexpr double kD4b = 0.091576213509771;
constexpr double kD4wa = 0.109951743655322;
constexpr double kD4c = 0.108103018168070;
constexpr double kD4d = 0.445948490915965;
constexpr double kD4wc = 0.223381589678011;
constexpr BarycentricPoint kDegree4[] = {
    {kD4a, kD4b, kD4b, kD4wa}, {kD4b, kD4a, kD4b, kD4wa}, {kD4b, kD4b, kD4a, kD4wa},
    {kD4c, kD4d, kD4d, kD4wc}, {kD4d, kD4c, kD4d, kD4wc}, {kD4d, kD4d, kD4c, kD4wc},
};

constexpr double kD5a = 0.797426985353087;
constexpr double kD5b = 0.101286507323456;
constexpr double kD5wa = 0.125939180544827;
constexpr double kD5c = 0.059715871789770;
constexpr double kD5d = 0.470142064105115;
constexpr double kD5wc = 0.132394152788506;
constexpr BarycentricPoint kDegree5[] = {
    {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 0.225},
    {kD5a, kD5b, kD5b, kD5wa}, {kD5b, kD5a, kD5b, kD5wa}, {kD5b, kD5b, kD5a, kD5wa},
    {kD5c, kD5d, kD5d, kD5wc}, {kD5d, kD5c, kD5d, kD5wc}, {kD5d, kD5d, kD5c, kD5wc},
};

}  // namespace

std::span<const BarycentricPoint> dunavant_rule(int degree) {
  switch (std::clamp(degree, 1, 5)) {
    case 1: return kDegree1;
    case 2: return kDegree2;
    case 3: return kDegree3;
    case 4: return kDegree4;
    default: return kDegree5;
  }
}

}  // namespace gbpol::surface
