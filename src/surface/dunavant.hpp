// Dunavant symmetric Gauss quadrature rules on the reference triangle.
//
// The paper cites Dunavant [11] for the per-triangle quadrature points used
// in the surface integral of Eq. (3)/(4). Rules of polynomial degree 1-5
// (1, 3, 4, 6 and 7 points) are provided; weights are normalized to sum to 1
// so that a physical point weight is `rule_weight * triangle_area`.
#pragma once

#include <span>

namespace gbpol::surface {

struct BarycentricPoint {
  double l1, l2, l3;  // barycentric coordinates, l1 + l2 + l3 = 1
  double weight;      // fraction of the triangle area
};

// Returns the rule for the requested polynomial degree (1..5). Degrees
// outside that range are clamped.
std::span<const BarycentricPoint> dunavant_rule(int degree);

}  // namespace gbpol::surface
