// Triangle-soup surface mesh. The quadrature sampler only needs per-triangle
// geometry, so no shared-vertex connectivity is maintained.
#pragma once

#include <vector>

#include "support/vec3.hpp"

namespace gbpol::surface {

struct Triangle {
  Vec3 a, b, c;

  Vec3 centroid() const { return (a + b + c) / 3.0; }
  // Unoriented geometric normal scaled by twice the area.
  Vec3 area_normal() const { return cross(b - a, c - a); }
  double area() const { return 0.5 * norm(area_normal()); }
};

struct TriangleMesh {
  std::vector<Triangle> triangles;

  double total_area() const {
    double s = 0.0;
    for (const Triangle& t : triangles) s += t.area();
    return s;
  }

  // Enclosed volume by the divergence theorem (valid when triangles are
  // consistently outward-oriented, which the marcher guarantees):
  //   V = (1/3) * sum over triangles of centroid . area_normal / 2.
  double enclosed_volume() const {
    double s = 0.0;
    for (const Triangle& t : triangles) s += dot(t.centroid(), t.area_normal());
    return s / 6.0;
  }
};

}  // namespace gbpol::surface
