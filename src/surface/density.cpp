#include "surface/density.hpp"

#include <algorithm>
#include <cmath>

namespace gbpol::surface {

DensityField::DensityField(const Molecule& mol) : DensityField(mol, Params{}) {}

DensityField::DensityField(const Molecule& mol, Params params) : params_(params) {
  // Per-atom reach: r * sqrt(1 + ln(1/tol)/kappa); use the largest radius.
  const double max_r = std::max(mol.max_radius(), 0.5);
  cutoff_ = max_r * std::sqrt(1.0 + std::log(1.0 / params_.tolerance) / params_.kappa);

  domain_ = mol.bounding_box();
  if (domain_.empty()) domain_.expand(Vec3{});
  domain_.lo -= Vec3{cutoff_, cutoff_, cutoff_};
  domain_.hi += Vec3{cutoff_, cutoff_, cutoff_};

  cell_size_ = cutoff_;
  grid_origin_ = domain_.lo;
  const Vec3 ext = domain_.extent();
  nx_ = std::max(1, static_cast<int>(std::ceil(ext.x / cell_size_)));
  ny_ = std::max(1, static_cast<int>(std::ceil(ext.y / cell_size_)));
  nz_ = std::max(1, static_cast<int>(std::ceil(ext.z / cell_size_)));

  // Counting sort of atoms into cells.
  const auto atoms = mol.atoms();
  std::vector<std::uint32_t> cell_of(atoms.size());
  cell_start_.assign(static_cast<std::size_t>(nx_) * ny_ * nz_ + 1, 0);
  auto clampi = [](int v, int n) { return std::clamp(v, 0, n - 1); };
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const Vec3 rel = atoms[i].pos - grid_origin_;
    const int cx = clampi(static_cast<int>(rel.x / cell_size_), nx_);
    const int cy = clampi(static_cast<int>(rel.y / cell_size_), ny_);
    const int cz = clampi(static_cast<int>(rel.z / cell_size_), nz_);
    cell_of[i] = static_cast<std::uint32_t>(cell_index(cx, cy, cz));
    ++cell_start_[cell_of[i] + 1];
  }
  for (std::size_t c = 1; c < cell_start_.size(); ++c) cell_start_[c] += cell_start_[c - 1];
  entries_.resize(atoms.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    const double r = std::max(atoms[i].radius, 0.5);
    entries_[cursor[cell_of[i]]++] = Entry{atoms[i].pos, 1.0 / (r * r)};
  }
}

std::size_t DensityField::cell_index(int cx, int cy, int cz) const {
  return (static_cast<std::size_t>(cz) * ny_ + cy) * nx_ + cx;
}

template <typename Fn>
void DensityField::for_neighbors(const Vec3& p, Fn&& fn) const {
  const Vec3 rel = p - grid_origin_;
  const int cx = static_cast<int>(std::floor(rel.x / cell_size_));
  const int cy = static_cast<int>(std::floor(rel.y / cell_size_));
  const int cz = static_cast<int>(std::floor(rel.z / cell_size_));
  for (int dz = -1; dz <= 1; ++dz) {
    const int z = cz + dz;
    if (z < 0 || z >= nz_) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int y = cy + dy;
      if (y < 0 || y >= ny_) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int x = cx + dx;
        if (x < 0 || x >= nx_) continue;
        const std::size_t c = cell_index(x, y, z);
        for (std::uint32_t i = cell_start_[c]; i < cell_start_[c + 1]; ++i) fn(entries_[i]);
      }
    }
  }
}

double DensityField::value(const Vec3& p) const {
  double f = 0.0;
  const double kappa = params_.kappa;
  const double cut2 = cutoff_ * cutoff_;
  for_neighbors(p, [&](const Entry& e) {
    const double d2 = distance2(p, e.pos);
    if (d2 > cut2) return;
    f += std::exp(-kappa * (d2 * e.inv_r2 - 1.0));
  });
  return f;
}

Vec3 DensityField::gradient(const Vec3& p) const {
  Vec3 g;
  const double kappa = params_.kappa;
  const double cut2 = cutoff_ * cutoff_;
  for_neighbors(p, [&](const Entry& e) {
    const double d2 = distance2(p, e.pos);
    if (d2 > cut2) return;
    const double w = std::exp(-kappa * (d2 * e.inv_r2 - 1.0));
    // d/dp exp(-kappa(|p-c|^2/r^2 - 1)) = -2 kappa/r^2 * w * (p - c)
    g += (p - e.pos) * (-2.0 * kappa * e.inv_r2 * w);
  });
  return g;
}

}  // namespace gbpol::surface
