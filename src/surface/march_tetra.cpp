#include "surface/march_tetra.hpp"

#include <array>
#include <cmath>
#include <cstddef>
#include <vector>

namespace gbpol::surface {
namespace {

// Corner i of a cube sits at offset (i&1, (i>>1)&1, (i>>2)&1). The six
// tetrahedra below share the 0-7 main diagonal; this decomposition
// triangulates every cube face with the diagonal through the face corners
// adjacent to 0 and 7, which is the SAME geometric diagonal its neighbour
// picks — so the extracted surface is crack-free without parity tricks.
constexpr int kTets[6][4] = {
    {0, 1, 3, 7}, {0, 3, 2, 7}, {0, 2, 6, 7},
    {0, 6, 4, 7}, {0, 4, 5, 7}, {0, 5, 1, 7},
};

Vec3 interpolate(const Vec3& p0, double f0, const Vec3& p1, double f1, double iso) {
  const double denom = f1 - f0;
  // Corners are classified strictly-inside vs outside, so denom != 0 for a
  // crossed edge; the guard is defensive for near-equal values.
  const double t = std::abs(denom) > 1e-300 ? (iso - f0) / denom : 0.5;
  return p0 + (p1 - p0) * t;
}

// Appends `tri` oriented so its normal points away from `inside_ref` (a
// point on the molecule side of the surface).
void emit_oriented(TriangleMesh& mesh, Triangle tri, const Vec3& inside_ref) {
  const Vec3 an = tri.area_normal();
  constexpr double kMinArea2 = 1e-20;
  if (norm2(an) < kMinArea2) return;  // degenerate sliver
  if (dot(an, tri.centroid() - inside_ref) < 0.0) std::swap(tri.b, tri.c);
  mesh.triangles.push_back(tri);
}

void polygonize_tet(TriangleMesh& mesh, const std::array<Vec3, 4>& p,
                    const std::array<double, 4>& f, double iso) {
  int inside[4], outside[4];
  int n_in = 0, n_out = 0;
  for (int i = 0; i < 4; ++i) {
    if (f[i] > iso)
      inside[n_in++] = i;
    else
      outside[n_out++] = i;
  }
  if (n_in == 0 || n_in == 4) return;

  if (n_in == 1 || n_in == 3) {
    // One vertex separated from the other three: single triangle.
    const int apex = n_in == 1 ? inside[0] : outside[0];
    const int* base = n_in == 1 ? outside : inside;
    Triangle tri{
        interpolate(p[apex], f[apex], p[base[0]], f[base[0]], iso),
        interpolate(p[apex], f[apex], p[base[1]], f[base[1]], iso),
        interpolate(p[apex], f[apex], p[base[2]], f[base[2]], iso),
    };
    const Vec3 inside_ref = n_in == 1 ? p[apex] : (p[base[0]] + p[base[1]] + p[base[2]]) / 3.0;
    emit_oriented(mesh, tri, inside_ref);
    return;
  }

  // Two in, two out: the crossing points form a quad; split into two
  // triangles sharing the q0-q2 diagonal (q indices chosen so the quad is
  // traversed along its perimeter: (a-c, a-d, b-d, b-c)).
  const int a = inside[0], b = inside[1], c = outside[0], d = outside[1];
  const Vec3 q0 = interpolate(p[a], f[a], p[c], f[c], iso);
  const Vec3 q1 = interpolate(p[a], f[a], p[d], f[d], iso);
  const Vec3 q2 = interpolate(p[b], f[b], p[d], f[d], iso);
  const Vec3 q3 = interpolate(p[b], f[b], p[c], f[c], iso);
  const Vec3 inside_ref = 0.5 * (p[a] + p[b]);
  emit_oriented(mesh, Triangle{q0, q1, q2}, inside_ref);
  emit_oriented(mesh, Triangle{q0, q2, q3}, inside_ref);
}

}  // namespace

TriangleMesh march_tetrahedra(const DensityField& field, const MarchParams& params) {
  const Aabb& dom = field.domain();
  const Vec3 ext = dom.extent();
  const double h = params.grid_spacing;
  const int nx = std::max(1, static_cast<int>(std::ceil(ext.x / h)));
  const int ny = std::max(1, static_cast<int>(std::ceil(ext.y / h)));
  const int nz = std::max(1, static_cast<int>(std::ceil(ext.z / h)));

  // Sample the field on the (nx+1)(ny+1)(nz+1) lattice once; cells then read
  // corners from the cache instead of re-evaluating the field 8x6 times.
  const std::size_t sx = nx + 1, sy = ny + 1, sz = nz + 1;
  std::vector<double> values(sx * sy * sz);
  auto vidx = [&](int ix, int iy, int iz) {
    return (static_cast<std::size_t>(iz) * sy + iy) * sx + ix;
  };
  auto point = [&](int ix, int iy, int iz) {
    return Vec3{dom.lo.x + ix * h, dom.lo.y + iy * h, dom.lo.z + iz * h};
  };
  for (int iz = 0; iz < static_cast<int>(sz); ++iz)
    for (int iy = 0; iy < static_cast<int>(sy); ++iy)
      for (int ix = 0; ix < static_cast<int>(sx); ++ix)
        values[vidx(ix, iy, iz)] = field.value(point(ix, iy, iz));

  TriangleMesh mesh;
  const double iso = params.iso_value;
  for (int cz = 0; cz < nz; ++cz) {
    for (int cy = 0; cy < ny; ++cy) {
      for (int cx = 0; cx < nx; ++cx) {
        std::array<Vec3, 8> corner;
        std::array<double, 8> fval;
        bool any_in = false, any_out = false;
        for (int i = 0; i < 8; ++i) {
          const int ix = cx + (i & 1), iy = cy + ((i >> 1) & 1), iz = cz + ((i >> 2) & 1);
          corner[i] = point(ix, iy, iz);
          fval[i] = values[vidx(ix, iy, iz)];
          (fval[i] > iso ? any_in : any_out) = true;
        }
        if (!any_in || !any_out) continue;
        for (const auto& tet : kTets) {
          polygonize_tet(mesh,
                         {corner[tet[0]], corner[tet[1]], corner[tet[2]], corner[tet[3]]},
                         {fval[tet[0]], fval[tet[1]], fval[tet[2]], fval[tet[3]]}, iso);
        }
      }
    }
  }
  return mesh;
}

}  // namespace gbpol::surface
