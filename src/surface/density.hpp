// Gaussian molecular density field.
//
// The molecular surface is the isosurface f(x) = 1 of
//   f(x) = sum_i exp(-kappa * (|x - c_i|^2 / r_i^2 - 1)),
// the standard "blobby" Gaussian surface used by molecular-surface tools.
// kappa controls how tightly the surface hugs the atoms; each atom's
// contribution is negligible beyond a distance of
//   r_i * sqrt(1 + ln(1/tol)/kappa),
// which lets evaluation use a cell list and stay O(1) per query.
#pragma once

#include <cstdint>
#include <vector>

#include "molecule/molecule.hpp"
#include "support/aabb.hpp"
#include "support/vec3.hpp"

namespace gbpol::surface {

class DensityField {
 public:
  struct Params {
    double kappa = 2.3;
    double tolerance = 1e-4;  // per-atom contribution cutoff
  };

  explicit DensityField(const Molecule& mol);  // default Params
  DensityField(const Molecule& mol, Params params);

  double value(const Vec3& p) const;
  Vec3 gradient(const Vec3& p) const;

  // Largest distance at which any atom still contributes (cell-list reach).
  double cutoff() const { return cutoff_; }
  // Molecule bounds inflated by the cutoff: outside this box f < n*tolerance.
  const Aabb& domain() const { return domain_; }

 private:
  struct Entry {
    Vec3 pos;
    double inv_r2;  // 1 / r_i^2
  };

  // Iterates atoms within the cutoff of p.
  template <typename Fn>
  void for_neighbors(const Vec3& p, Fn&& fn) const;

  std::size_t cell_index(int cx, int cy, int cz) const;

  Params params_;
  double cutoff_ = 0.0;
  Aabb domain_;
  // Cell list over atoms, cell size = cutoff.
  Vec3 grid_origin_;
  double cell_size_ = 1.0;
  int nx_ = 1, ny_ = 1, nz_ = 1;
  std::vector<std::uint32_t> cell_start_;  // size nx*ny*nz + 1
  std::vector<Entry> entries_;             // atoms bucketed by cell
};

}  // namespace gbpol::surface
