// Surface quadrature sets: the (r_k, n_k, w_k) triplets consumed by the
// r^4/r^6 Born-radius integrals of Eq. (3)/(4). Structure-of-arrays layout:
// the inner loops of both the naive and octree algorithms stream these.
#pragma once

#include <cstddef>
#include <vector>

#include "molecule/molecule.hpp"
#include "support/vec3.hpp"
#include "surface/mesh.hpp"

namespace gbpol::surface {

struct SurfaceQuadrature {
  std::vector<Vec3> points;    // r_k, on the molecular surface
  std::vector<Vec3> normals;   // n_k, unit outward normals
  std::vector<double> weights; // w_k, area weights (sum ~ total surface area)

  std::size_t size() const { return points.size(); }

  double total_weight() const {
    double s = 0.0;
    for (double w : weights) s += w;
    return s;
  }
};

// Per-triangle Dunavant sampling of a mesh: `degree` selects the rule
// (1..5 -> 1..7 points per triangle). Normals are the triangles' outward
// unit normals; point weights are rule_weight * triangle_area.
SurfaceQuadrature quadrature_from_mesh(const TriangleMesh& mesh, int degree = 2);

struct QuadratureParams {
  double grid_spacing = 1.5;
  int dunavant_degree = 2;
  double kappa = 2.3;
};

// End-to-end pipeline: Gaussian density -> marching tetrahedra -> Dunavant
// sampling. This is the production path a user calls on a Molecule.
SurfaceQuadrature molecular_surface_quadrature(const Molecule& mol,
                                               const QuadratureParams& params = {});

}  // namespace gbpol::surface
