// Multi-tenant GB polarization-energy service.
//
// gbpol::Service is the serving facade over the Engine: many tenants submit
// molecule requests; the service queues them deterministically, reuses
// preparation state across requests, and answers each one with a ServeResult
// whose embedded RunResult carries the serving accounting (schema v2 fields
// of core/engine.hpp). Four ingredients:
//
//  * JOB QUEUE FRONT END. submit() is thread-safe and assigns each request a
//    monotone sequence number under the queue lock; drain() serves strictly
//    in acceptance order. "Deterministic" therefore means: the serve order
//    IS the accept order, and every request's answer depends only on the
//    accepted sequence before it — never on thread timing after acceptance.
//    Serving itself is serialized: drain()/serve() calls take a dedicated
//    serving lock, so at most one thread drives the compute paths (and the
//    persistent pool, which requires one caller) at a time, while submit()
//    and the accessors stay callable concurrently.
//  * PREPARED-STATE CACHE. Prepared::build is a deterministic pure function
//    of (molecule bits, quadrature params, leaf capacity) — the same key this
//    cache hashes (ckpt::fnv1a64 over the raw IEEE-754 bits). A hit runs the
//    Engine over the cached Prepared, which is therefore bit-identical to a
//    cold build; entries are charged their replicated_footprint() bytes and
//    evicted LRU-first once the byte budget is exceeded.
//  * DELTA ROUTING. Requests that re-evaluate a known FAMILY (same atom
//    count, charges, radii, params — only positions moved: a docking scan)
//    are routed through core/incremental's TrajectoryDriver instead of a
//    cold prepare, when the service's run shape is serial. The driver is
//    anchored at the family's first-seen geometry and each delta request is
//    one step() in acceptance order.
//  * BATCHED DISPATCH. When the service run shape is distributed, a
//    mpisim::PersistentPool is created once and every request's ranks run on
//    the resident worker threads; requests dispatched within one drain()
//    share a batch_id, so rank setup is paid per pool, not per request.
//
// Determinism contract (three paths, pinned by tests/serve_test.cpp and the
// bench/fig_serving self-gate):
//   1. exact hit (memo or journal replay) — the stored answer of a previous
//      serve, bit-identical to that serve by construction;
//   2. cold miss / cached-Prepared hit — an Engine::run over a Prepared that
//      is bit-identical to a fresh build, hence 0 ulp vs the direct cold run
//      of the same request;
//   3. delta route — 0 ulp vs a mirror ReuseMode::kCold TrajectoryDriver fed
//      the same step sequence (the core/incremental differential contract),
//      and <= 1e-12 relative vs a direct Engine::run (E_pol near-fold
//      reassociation, documented in core/incremental.hpp).
// ServiceOptions::delta_routing = false disables path 3, making EVERY served
// energy 0 ulp against a direct cold Engine::run.
//
// Durability: with a campaign directory resolved (explicit field or
// GBPOL_CAMPAIGN_DIR), accepted/running/done transitions are journaled
// through harness::Campaign at <dir>/service.journal. A service restarted on
// the same journal replays done jobs (payload = the v2 run-result JSON plus
// a "request_key" stamp, the request's content hash) without recomputation
// and re-serves jobs that were accepted but not done. Two guards keep a
// replay from serving a DIFFERENT request's stored answer: auto-assigned
// "req-<n>" ids resume numbering after the journal's highest seen n (so a
// restarted service never reissues a dead incarnation's auto id), and every
// replay candidate's request_key is checked against the incoming request —
// on mismatch the answer is recomputed instead of replayed.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "harness/campaign.hpp"
#include "mpisim/pool.hpp"

namespace gbpol {

// One tenant request: the molecule plus the evaluation parameters that are
// legitimately per-request. The run SHAPE (ranks/threads/mode/balancing) is
// service-level policy — tenants ask for an energy, not a topology.
struct ServeRequest {
  // Stable job id for the durable queue; empty = auto-assigned
  // "req-<sequence>" (numbering resumes past the journal's highest seen
  // sequence on restart). Two requests with the same id AND the same content
  // hash are the same job: once one is done (this run or a previous
  // incarnation via the journal), the other replays its stored answer. A
  // same-id request with DIFFERENT content is computed fresh — the journal
  // payload's request_key stamp is validated before any replay.
  std::string id;
  Molecule mol;
  ApproxParams params;
  GBConstants constants;
  surface::QuadratureParams surface;
};

// Which of the documented serving paths produced the answer.
enum class ServePath {
  kCold,      // cache miss: fresh surface + Prepared build + Engine::run
  kCached,    // Prepared-cache hit: Engine::run over the cached preparation
  kMemoized,  // exact repeat: stored RunResult of a previous serve
  kReplayed,  // journal replay from a previous process incarnation
  kDelta,     // TrajectoryDriver delta update (same family, moved positions)
};
const char* serve_path_name(ServePath path);

struct ServeResult {
  std::string job_id;
  ServePath path = ServePath::kCold;
  // Replayed results are rebuilt from the journaled v2 JSON digest: the
  // scalar surface (energy, timings, counters) is exact, born_sorted is
  // empty (the schema stores the digest, not the array).
  bool from_journal = false;
  RunResult result;  // serving fields (cache_hit/queue/serve/batch) filled in
};

struct ServiceOptions {
  // Run shape + evaluation routing for every request (mode, ranks, threads,
  // balancing, traversal, simd, ...). ranks > 1 / kDistributed creates the
  // persistent pool; RunOptions::pool is owned by the service and must stay
  // null here. trace_out / campaign_dir on THIS RunOptions are ignored (the
  // constructor pins both to "-", the explicit-off switch, so not even the
  // env defaults leak in) — the service-level fields below are the
  // destinations.
  RunOptions run;

  // Prepared-cache byte budget (replicated_footprint bytes per entry). The
  // most-recently-used entry is never evicted, so one oversized molecule
  // still serves (the budget then only bounds the rest).
  std::size_t cache_budget_bytes = std::size_t{256} << 20;

  // Store full RunResults for exact request repeats (path kMemoized).
  bool memoize_results = true;

  // Route same-family moved-geometry requests through the incremental
  // TrajectoryDriver (serial run shapes only; see the header contract).
  bool delta_routing = true;
  // Skin margin handed to TrajectoryOptions for delta-routed families.
  double delta_skin = 0.3;

  // Durable-queue journal directory. Empty = GBPOL_CAMPAIGN_DIR env default,
  // "-" = explicitly off (PR-5 explicit-wins convention). The journal file
  // is <resolved dir>/service.journal.
  std::string campaign_dir;

  // Soak-scale request count for the stress suites (absorbs the
  // GBPOL_SOAK_TESTS side channel): > 0 wins outright; 0 falls back to the
  // env var (any value but "0"/"OFF"/"" = soak scale), else the quick scale.
  int soak_requests = 0;
};

// Explicit-wins resolution (the documented absorption points).
std::string resolved_service_campaign_dir(const ServiceOptions& options);
int resolved_soak_requests(const ServiceOptions& options, int quick_scale,
                           int soak_scale);

struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;
  std::uint64_t cold = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_evicted_bytes = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t delta_routed = 0;
  std::uint64_t replayed = 0;
  // Journal replays refused because the stored payload's request_key did not
  // match the incoming request (same job id, different content) — the answer
  // was recomputed instead.
  std::uint64_t replay_rejected = 0;
  std::uint64_t batches = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Accepts a request into the queue (thread-safe) and returns its job id.
  // Journals the acceptance when the durable queue is on.
  std::string submit(ServeRequest request);

  // Serves up to max_requests queued requests in acceptance order on the
  // calling thread, returning one ServeResult per served request. A partial
  // drain (max_requests < queue depth) leaves the rest queued — and, with
  // the journal on, re-servable by a restarted service. Concurrent drains
  // are serialized on the serving lock: each queued request is served by
  // exactly one drain, and its result goes to that caller only.
  std::vector<ServeResult> drain(std::size_t max_requests = SIZE_MAX);

  // Convenience: submit + drain everything pending; returns THIS request's
  // result (located by job id in the drained batch — never another
  // tenant's). Earlier pending requests are served too, in acceptance
  // order; their ServeResults are dropped here, but their answers stay
  // memoized/journaled, so their owners can recover them by re-submitting
  // the same id. Throws if the result cannot be produced.
  ServeResult serve(ServeRequest request);

  std::size_t queued() const;
  ServiceStats stats() const;
  std::size_t cache_entries() const;
  std::size_t cache_bytes() const;
  // Non-null once a distributed run shape forced pool creation.
  const mpisim::PersistentPool* pool() const { return pool_.get(); }
  const ServiceOptions& options() const { return options_; }

 private:
  struct Pending {
    std::string job_id;
    std::uint64_t sequence = 0;
    ServeRequest request;
    std::chrono::steady_clock::time_point accepted_at;
  };
  struct CacheEntry {
    std::uint64_t key = 0;
    std::size_t bytes = 0;
    std::shared_ptr<const Prepared> prep;
  };
  struct Family {
    Molecule first_mol;  // anchor geometry for a lazily-created driver
    std::unique_ptr<TrajectoryDriver> driver;
  };

  std::vector<ServeResult> drain_locked(std::size_t max_requests);
  ServeResult serve_one(Pending pending, std::uint64_t batch_id);
  RunResult compute(const Pending& pending, std::uint64_t full_key,
                    std::uint64_t family_key, std::uint64_t prep_key,
                    ServePath& path, std::uint64_t batch_id);
  std::shared_ptr<const Prepared> cache_lookup(std::uint64_t prep_key);
  std::shared_ptr<const Prepared> cache_insert(std::uint64_t prep_key,
                                               Prepared prep);

  ServiceOptions options_;
  std::string campaign_dir_;

  // Serializes the serving side: drain()/serve() hold it end to end, so the
  // compute paths (memo_, families_, campaign_, pool_) run on one thread at
  // a time.
  std::mutex serve_mutex_;
  // Guards the state shared between the serving thread and the concurrent
  // public surface: queue_, next_sequence_, stats_, and the Prepared cache
  // (cache_/cache_index_/cache_bytes_) that cache_entries()/cache_bytes()
  // read.
  mutable std::mutex mutex_;
  std::deque<Pending> queue_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_batch_ = 0;
  ServiceStats stats_;

  // LRU Prepared cache: front = most recent. Entries are shared_ptr so an
  // Engine::run over an entry evicted mid-flight (impossible today, cheap
  // insurance tomorrow) keeps its preparation alive.
  std::list<CacheEntry> cache_;
  std::map<std::uint64_t, std::list<CacheEntry>::iterator> cache_index_;
  std::size_t cache_bytes_ = 0;

  // Serving-thread-only state (guarded by serve_mutex_, not mutex_: no
  // public accessor reads these).
  std::map<std::uint64_t, RunResult> memo_;
  std::map<std::uint64_t, Family> families_;

  std::unique_ptr<harness::Campaign> campaign_;
  std::unique_ptr<mpisim::PersistentPool> pool_;
};

}  // namespace gbpol
