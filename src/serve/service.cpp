#include "serve/service.hpp"

#include <bit>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "molecule/io.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "surface/quadrature.hpp"

namespace gbpol {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Streaming FNV-1a over 64-bit words (byte order of ckpt::fnv1a64), so the
// per-atom loops below don't have to materialize an initializer_list.
struct Hasher {
  std::uint64_t h = 14695981039346656037ull;

  void add(std::uint64_t w) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  void add(double d) { add(std::bit_cast<std::uint64_t>(d)); }
  void add(const std::string& s) {
    add(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) add(static_cast<std::uint64_t>(
        static_cast<unsigned char>(c)));
  }
};

// Atom identity (radii + charges) — the part of the molecule a docking scan
// keeps fixed.
void hash_identity(Hasher& h, const Molecule& mol) {
  h.add(static_cast<std::uint64_t>(mol.size()));
  for (const Atom& a : mol.atoms()) {
    h.add(a.radius);
    h.add(a.charge);
  }
}

void hash_positions(Hasher& h, const Molecule& mol) {
  for (const Atom& a : mol.atoms()) {
    h.add(a.pos.x);
    h.add(a.pos.y);
    h.add(a.pos.z);
  }
}

void hash_preparation_params(Hasher& h, const ServeRequest& r) {
  h.add(r.surface.grid_spacing);
  h.add(static_cast<std::uint64_t>(r.surface.dunavant_degree));
  h.add(r.surface.kappa);
  h.add(static_cast<std::uint64_t>(r.params.leaf_capacity));
}

void hash_evaluation_params(Hasher& h, const ServeRequest& r,
                            const RunOptions& run) {
  h.add(static_cast<std::uint64_t>(r.params.radius_kernel));
  h.add(r.params.eps_born);
  h.add(r.params.eps_epol);
  h.add(static_cast<std::uint64_t>(r.params.approx_math));
  h.add(static_cast<std::uint64_t>(r.params.born_strict_criterion));
  h.add(static_cast<std::uint64_t>(r.params.born_dipole_correction));
  h.add(r.constants.eps_solvent);
  h.add(r.constants.coulomb_kcal);
  // Run shape: anything that can change a bit of the answer or its
  // accounting keys a distinct memo entry.
  h.add(static_cast<std::uint64_t>(run.mode));
  h.add(static_cast<std::uint64_t>(run.ranks));
  h.add(static_cast<std::uint64_t>(run.threads_per_rank));
  h.add(static_cast<std::uint64_t>(run.division));
  h.add(static_cast<std::uint64_t>(run.traversal));
  h.add(static_cast<std::uint64_t>(run.balance));
  h.add(static_cast<std::uint64_t>(run.canonical_reduction));
  h.add(static_cast<std::uint64_t>(run.balance_chunk_leaves));
  h.add(static_cast<std::uint64_t>(run.distribution));
  h.add(static_cast<std::uint64_t>(run.integrity_guards));
  h.add(resolved_simd(run));
}

bool is_serial_shape(const RunOptions& run) {
  switch (run.mode) {
    case EngineMode::kSerial:
      return true;
    case EngineMode::kCilk:
    case EngineMode::kDistributed:
      return false;
    case EngineMode::kAuto:
      return run.ranks <= 1 && run.threads_per_rank <= 1;
  }
  return false;
}

bool is_distributed_shape(const RunOptions& run) {
  return run.mode == EngineMode::kDistributed ||
         (run.mode == EngineMode::kAuto && run.ranks > 1);
}

constexpr char kAutoIdPrefix[] = "req-";

// Fixed-width hex of the request content hash; stamped into the journal
// payload so a replay can prove the stored answer belongs to THIS request.
std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

// "req-<n>" -> n; false for anything else (explicit ids, partial matches).
bool parse_auto_id(const std::string& job, std::uint64_t& sequence) {
  const std::string_view prefix = kAutoIdPrefix;
  if (job.size() <= prefix.size() || job.compare(0, prefix.size(), prefix) != 0)
    return false;
  const char* first = job.data() + prefix.size();
  const char* last = job.data() + job.size();
  const auto [ptr, ec] = std::from_chars(first, last, sequence);
  return ec == std::errc{} && ptr == last;
}

// Rebuilds the scalar surface of a RunResult from its journaled v2 digest
// (born_sorted stays empty — the schema stores a digest, not the array).
RunResult result_from_doc(const RunResultDoc& doc) {
  RunResult r;
  r.energy = doc.energy;
  r.compute_seconds = doc.compute_seconds;
  r.comm_seconds = doc.comm_seconds;
  r.wall_seconds = doc.wall_seconds;
  r.steals = doc.steals;
  r.tasks = doc.tasks;
  r.replicated_bytes = static_cast<std::size_t>(doc.replicated_bytes);
  r.owned_bytes_per_rank = static_cast<std::size_t>(doc.owned_bytes_per_rank);
  r.owned_halo_bytes = static_cast<std::size_t>(doc.owned_halo_bytes);
  r.retries = doc.retries;
  r.redistributed_work_items = doc.redistributed_work_items;
  r.migrated_chunks = doc.migrated_chunks;
  r.steal_grants = doc.steal_grants;
  r.dirty_leaves = doc.dirty_leaves;
  r.lists_rebuilt = doc.lists_rebuilt;
  r.reused_fraction = doc.reused_fraction;
  r.corruption_injected = doc.corruption_injected;
  r.corruption_detected = doc.corruption_detected;
  r.corruption_recomputed = doc.corruption_recomputed;
  r.corruption_retransmits = doc.corruption_retransmits;
  r.cache_hit = doc.cache_hit;
  r.queue_seconds = doc.queue_seconds;
  r.serve_seconds = doc.serve_seconds;
  r.batch_id = doc.batch_id;
  r.degraded = doc.degraded;
  r.killed = doc.killed;
  r.resumed = doc.resumed;
  r.stalls_converted = doc.stalls_converted;
  r.ranks = doc.ranks;
  r.threads_per_rank = doc.threads_per_rank;
  r.rank_results = doc.rank_results;
  return r;
}

}  // namespace

const char* serve_path_name(ServePath path) {
  switch (path) {
    case ServePath::kCold: return "cold";
    case ServePath::kCached: return "cached";
    case ServePath::kMemoized: return "memoized";
    case ServePath::kReplayed: return "replayed";
    case ServePath::kDelta: return "delta";
  }
  return "unknown";
}

std::string resolved_service_campaign_dir(const ServiceOptions& options) {
  if (options.campaign_dir == "-") return "";
  if (!options.campaign_dir.empty()) return options.campaign_dir;
  if (const char* env = std::getenv("GBPOL_CAMPAIGN_DIR")) return env;
  return "";
}

int resolved_soak_requests(const ServiceOptions& options, int quick_scale,
                           int soak_scale) {
  if (options.soak_requests > 0) return options.soak_requests;
  if (const char* env = std::getenv("GBPOL_SOAK_TESTS")) {
    const std::string v = env;
    if (!v.empty() && v != "0" && v != "OFF" && v != "off") return soak_scale;
  }
  return quick_scale;
}

Service::Service(ServiceOptions options) : options_(std::move(options)) {
  // The service owns its pool and its journal/trace destinations; a
  // caller-set pool or an engine-level campaign dir / trace file would
  // double-route every request. "-" is the explicit-off switch, so the
  // GBPOL_CAMPAIGN_DIR / GBPOL_TRACE_OUT env defaults cannot leak in either.
  options_.run.pool = nullptr;
  options_.run.campaign_dir = "-";
  options_.run.trace_out = "-";

  campaign_dir_ = resolved_service_campaign_dir(options_);
  if (!campaign_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(campaign_dir_, ec);
    harness::CampaignConfig config;
    config.journal_path = campaign_dir_ + "/service.journal";
    campaign_ = std::make_unique<harness::Campaign>(config);
    // Resume auto-id numbering past every "req-<n>" the journal has seen, so
    // a restarted incarnation cannot reissue a dead incarnation's auto id
    // (and then mistake its journaled answer for this request's).
    for (const ckpt::JournalRecord& rec : campaign_->journal().records()) {
      std::uint64_t seen = 0;
      if (parse_auto_id(rec.job, seen) && seen >= next_sequence_)
        next_sequence_ = seen + 1;
    }
  }
  if (is_distributed_shape(options_.run) && options_.run.ranks >= 1)
    pool_ = std::make_unique<mpisim::PersistentPool>(options_.run.ranks);
}

Service::~Service() = default;

std::string Service::submit(ServeRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Pending pending;
  pending.sequence = next_sequence_++;
  pending.job_id = request.id.empty()
                       ? kAutoIdPrefix + std::to_string(pending.sequence)
                       : request.id;
  pending.request = std::move(request);
  pending.accepted_at = Clock::now();
  ++stats_.accepted;
  obs::emit(obs::EventKind::kRequestAccept, pending.sequence);
  obs::add_request_accepted();
  if (campaign_ != nullptr) campaign_->record_queued(pending.job_id);
  std::string job_id = pending.job_id;
  queue_.push_back(std::move(pending));
  return job_id;
}

std::vector<ServeResult> Service::drain(std::size_t max_requests) {
  std::lock_guard<std::mutex> serving(serve_mutex_);
  return drain_locked(max_requests);
}

std::vector<ServeResult> Service::drain_locked(std::size_t max_requests) {
  std::vector<ServeResult> results;
  std::uint64_t batch_id = 0;
  while (results.size() < max_requests) {
    Pending pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      pending = std::move(queue_.front());
      queue_.pop_front();
      // One batch per drain: every pooled dispatch in this call shares the
      // id, so "requests that rode one persistent-pool round" is queryable.
      if (pool_ != nullptr && batch_id == 0) {
        batch_id = ++next_batch_;
        ++stats_.batches;
        obs::add_batch_dispatched();
      }
    }
    results.push_back(serve_one(std::move(pending), batch_id));
  }
  return results;
}

ServeResult Service::serve(ServeRequest request) {
  // Take the serving lock BEFORE submitting: any concurrent drain is then
  // either already past the queue (our request not yet visible) or waiting
  // behind us, so our own drain below is guaranteed to serve our job.
  std::lock_guard<std::mutex> serving(serve_mutex_);
  const std::string job_id = submit(std::move(request));
  std::vector<ServeResult> results = drain_locked(SIZE_MAX);
  for (ServeResult& r : results)
    if (r.job_id == job_id) return std::move(r);
  // Unreachable while the invariant above holds; fail loudly rather than
  // hand back another tenant's answer.
  throw IoError("service request '" + job_id +
                "' was not served by its own drain");
}

std::size_t Service::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t Service::cache_entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::size_t Service::cache_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_bytes_;
}

std::shared_ptr<const Prepared> Service::cache_lookup(std::uint64_t prep_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_index_.find(prep_key);
  if (it == cache_index_.end()) {
    obs::emit(obs::EventKind::kCacheMiss, prep_key);
    obs::add_cache_miss();
    ++stats_.cache_misses;
    ++stats_.cold;
    return nullptr;
  }
  cache_.splice(cache_.begin(), cache_, it->second);  // refresh LRU position
  obs::emit(obs::EventKind::kCacheHit, prep_key,
            static_cast<std::uint64_t>(cache_.front().bytes));
  obs::add_cache_hit();
  ++stats_.cache_hits;
  return cache_.front().prep;
}

std::shared_ptr<const Prepared> Service::cache_insert(std::uint64_t prep_key,
                                                      Prepared prep) {
  CacheEntry entry;
  entry.key = prep_key;
  entry.bytes = prep.replicated_footprint().bytes;
  entry.prep = std::make_shared<const Prepared>(std::move(prep));
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.push_front(std::move(entry));
  cache_index_[prep_key] = cache_.begin();
  cache_bytes_ += cache_.front().bytes;
  // Evict LRU-first down to the byte budget, but never the entry just
  // inserted: one oversized molecule must still serve.
  while (cache_bytes_ > options_.cache_budget_bytes && cache_.size() > 1) {
    const CacheEntry& victim = cache_.back();
    obs::emit(obs::EventKind::kCacheEvict, victim.key,
              static_cast<std::uint64_t>(victim.bytes));
    obs::add_cache_eviction(victim.bytes);
    ++stats_.cache_evictions;
    stats_.cache_evicted_bytes += victim.bytes;
    cache_bytes_ -= victim.bytes;
    cache_index_.erase(victim.key);
    cache_.pop_back();
  }
  return cache_.front().prep;
}

RunResult Service::compute(const Pending& pending, std::uint64_t full_key,
                           std::uint64_t family_key, std::uint64_t prep_key,
                           ServePath& path, std::uint64_t batch_id) {
  const ServeRequest& req = pending.request;

  // Path 1: exact repeat — replay the stored answer.
  if (options_.memoize_results) {
    const auto memo = memo_.find(full_key);
    if (memo != memo_.end()) {
      path = ServePath::kMemoized;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.memo_hits;
      }
      RunResult result = memo->second;
      result.cache_hit = true;
      result.batch_id = 0;  // no dispatch happened
      return result;
    }
  }

  // Path 3: same family, new geometry -> incremental delta update (serial
  // shapes only; the evaluation caches are serial, and the distributed
  // delta-maintained Prepared would break the 0-ulp cold-twin story).
  const auto family = families_.find(family_key);
  if (options_.delta_routing && is_serial_shape(options_.run) &&
      family != families_.end()) {
    Family& fam = family->second;
    if (fam.driver == nullptr) {
      TrajectoryOptions topt;
      topt.skin = options_.delta_skin;
      topt.surface = req.surface;
      fam.driver = std::make_unique<TrajectoryDriver>(
          fam.first_mol, topt, req.params, req.constants);
    }
    std::vector<Vec3> positions;
    positions.reserve(req.mol.size());
    for (const Atom& a : req.mol.atoms()) positions.push_back(a.pos);
    RunOptions run = options_.run;
    RunResult result = fam.driver->step(positions, run);
    path = ServePath::kDelta;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.delta_routed;
    }
    if (options_.memoize_results) memo_[full_key] = result;
    return result;
  }

  // Path 2: Prepared-cache hit or cold miss + insert (hit/miss accounting
  // happens inside cache_lookup, under the cache lock).
  std::shared_ptr<const Prepared> prep = cache_lookup(prep_key);
  const bool hit = prep != nullptr;
  if (!hit) {
    const surface::SurfaceQuadrature quad =
        surface::molecular_surface_quadrature(req.mol, req.surface);
    prep = cache_insert(
        prep_key, Prepared::build(req.mol, quad, req.params.leaf_capacity));
  }

  RunOptions run = options_.run;
  run.pool = pool_.get();
  const Engine engine(*prep, req.params, req.constants);
  RunResult result = engine.run(run);
  result.cache_hit = hit;
  result.batch_id = pool_ != nullptr ? batch_id : 0;
  path = hit ? ServePath::kCached : ServePath::kCold;

  // Register the family after its first cold serve so the NEXT moved
  // geometry can delta-route, and memoize the exact answer.
  families_.try_emplace(family_key, Family{req.mol, nullptr});
  if (options_.memoize_results) memo_[full_key] = result;
  return result;
}

ServeResult Service::serve_one(Pending pending, std::uint64_t batch_id) {
  const Clock::time_point dispatched_at = Clock::now();
  const double queue_seconds =
      seconds_between(pending.accepted_at, dispatched_at);
  obs::emit(obs::EventKind::kRequestDispatch, pending.sequence, batch_id);

  Hasher identity;
  hash_identity(identity, pending.request.mol);
  hash_preparation_params(identity, pending.request);

  Hasher prep_hash = identity;
  hash_positions(prep_hash, pending.request.mol);
  const std::uint64_t prep_key = prep_hash.h;

  Hasher family_hash = identity;
  hash_evaluation_params(family_hash, pending.request, options_.run);
  const std::uint64_t family_key = family_hash.h;

  Hasher full_hash = family_hash;
  hash_positions(full_hash, pending.request.mol);
  const std::uint64_t full_key = full_hash.h;

  ServeResult out;
  out.job_id = pending.job_id;

  ServePath path = ServePath::kCold;
  RunResult result;
  bool computed = false;
  const auto compute_and_stamp = [&]() {
    result = compute(pending, full_key, family_key, prep_key, path, batch_id);
    result.queue_seconds = queue_seconds;
    result.serve_seconds = seconds_between(dispatched_at, Clock::now());
    computed = true;
  };

  if (campaign_ != nullptr) {
    const harness::JobStatus& status =
        campaign_->run(pending.job_id, [&]() -> std::string {
          compute_and_stamp();
          // Stamp the payload with the request content hash so a later
          // incarnation can verify a replay candidate really answers THIS
          // request. The extra field is outside the v2 run-result schema
          // and ignored by its parser.
          obs::json::Value doc = run_result_to_json(result, pending.job_id);
          doc.as_object().emplace_back("request_key",
                                       obs::json::Value(hex_key(full_key)));
          return doc.dump();
        });
    if (!computed && status.state == ckpt::JobState::kDone) {
      // Journal replay from a previous incarnation (or a duplicate id).
      // Only honour the stored answer if its request_key matches this
      // request; a same-id job with different content must recompute.
      const obs::json::ParseResult payload = obs::json::parse(status.payload);
      const obs::json::Value* stored_key =
          payload.ok ? payload.value.find("request_key") : nullptr;
      const bool key_mismatch = stored_key != nullptr &&
                                stored_key->is_string() &&
                                stored_key->as_string() != hex_key(full_key);
      const RunResultParse parsed =
          payload.ok && !key_mismatch ? run_result_from_json(payload.value)
                                      : RunResultParse{};
      if (parsed.ok) {
        result = result_from_doc(parsed.doc);
        path = ServePath::kReplayed;
        out.from_journal = true;
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.replayed;
      } else if (key_mismatch) {
        // The journaled answer belongs to a different request that used the
        // same id. Serve this one fresh; the journal keeps the old record.
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.replay_rejected;
        }
        compute_and_stamp();
      } else {
        // Unreadable payload (e.g. a journal written by an older schema):
        // recompute rather than serve garbage; the journal keeps the old
        // done record, so this stays a one-off.
        compute_and_stamp();
      }
    } else if (!computed) {
      // Quarantined job: surface the failure loudly instead of a zero
      // energy pretending to be an answer.
      throw IoError("service job '" + pending.job_id +
                    "' is quarantined: " + status.payload);
    }
  } else {
    compute_and_stamp();
  }

  out.path = path;
  out.result = std::move(result);
  obs::emit(obs::EventKind::kRequestDone, pending.sequence,
            static_cast<std::uint64_t>(path));
  obs::add_request_served();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.served;
  }
  return out;
}

}  // namespace gbpol
