// Morton-ordered linearized octree.
//
// This is the paper's central data structure: a cache-friendly container for
// atoms and surface quadrature points. Properties it guarantees:
//
// * Points are stored sorted by Morton code, so EVERY node (not just leaves)
//   owns one contiguous index range [begin, end). The node-based static work
//   division hands rank i the i-th segment of leaves, which is therefore
//   also a contiguous segment of points.
// * Nodes live in one contiguous array, children of a node are adjacent
//   (breadth-first layout), so traversals walk mostly-forward in memory.
// * Space is linear in the number of points and INDEPENDENT of any
//   approximation parameter — the paper's key contrast with nonbonded lists
//   whose size grows cubically with the cutoff.
//
// Each node carries the geometry the Greengard-Rokhlin style near/far test
// needs: the centroid of the points under it and the radius of a ball around
// that centroid enclosing all of them.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "support/aabb.hpp"
#include "support/memtrack.hpp"
#include "support/vec3.hpp"

namespace gbpol {

struct OctreeNode {
  Vec3 centroid;            // geometric center of points under the node
  double radius = 0.0;      // max distance from centroid to any point under it
  std::uint32_t begin = 0;  // point range in Morton order
  std::uint32_t end = 0;
  std::int32_t first_child = -1;  // children are [first_child, first_child+child_count)
  std::uint8_t child_count = 0;
  std::uint8_t depth = 0;

  bool is_leaf() const { return child_count == 0; }
  std::uint32_t count() const { return end - begin; }
};

class Octree {
 public:
  struct BuildParams {
    std::uint32_t leaf_capacity = 32;
    int max_depth = 20;  // Morton codes carry 21 levels; one is kept in reserve
    // Optional fixed Morton quantization domain. When non-empty, codes are
    // quantized against THIS box instead of the point set's bounding box, so
    // two builds over (slightly) different point sets assign comparable codes
    // — the property the incremental trajectory engine (core/incremental.hpp)
    // needs to re-anchor a subset of points without perturbing the Morton
    // cells of everything else. Points outside the domain clamp to its faces
    // (morton::encode_point), which degrades traversal efficiency but never
    // correctness. Empty (the default) keeps the historical behavior.
    Aabb domain;
  };

  Octree() = default;

  // Builds over a point set. The octree keeps a Morton-sorted COPY of the
  // points; `original_index(i)` maps sorted slot i back to the input index.
  static Octree build(std::span<const Vec3> points, const BuildParams& params);
  static Octree build(std::span<const Vec3> points) { return build(points, BuildParams{}); }

  std::size_t num_points() const { return points_.size(); }
  std::span<const Vec3> points() const { return points_; }
  const Vec3& point(std::uint32_t sorted_slot) const { return points_[sorted_slot]; }
  std::uint32_t original_index(std::uint32_t sorted_slot) const { return perm_[sorted_slot]; }
  std::span<const std::uint32_t> permutation() const { return perm_; }

  std::span<const OctreeNode> nodes() const { return nodes_; }
  const OctreeNode& node(std::uint32_t id) const { return nodes_[id]; }
  const OctreeNode& root() const { return nodes_.front(); }
  bool empty() const { return nodes_.empty(); }

  // Leaf node ids in Morton (= point) order.
  std::span<const std::uint32_t> leaves() const { return leaves_; }

  int height() const;

  // Updates point coordinates WITHOUT rebuilding the topology: positions are
  // taken from `new_points` (original input order, same size), node
  // centroids and enclosing radii are recomputed bottom-up. Near/far tests
  // stay CORRECT after a refit (they only read the recomputed geometry);
  // only traversal efficiency degrades as atoms drift from their Morton
  // cells — the octree update-efficiency argument of paper §II, contrasted
  // with nblist rebuilds in bench/ablation_octree_vs_nblist.
  void refit(std::span<const Vec3> new_points);

  // Payload-only position patch for ONE sorted slot: updates the stored
  // point without touching node geometry. The trajectory engine uses this
  // for sub-skin motion — node centroids/radii deliberately stay at their
  // anchor values (the skin margin bounds how stale they can get), exactly
  // like a neighbor-list skin in MD codes. For a full geometry refresh use
  // refit(); for topology changes rebuild.
  void set_point(std::uint32_t sorted_slot, const Vec3& p) { points_[sorted_slot] = p; }

  // Logical footprint of the structure (paper §II space argument).
  MemoryFootprint footprint() const;

 private:
  std::vector<Vec3> points_;          // Morton order
  std::vector<std::uint32_t> perm_;   // sorted slot -> original index
  std::vector<OctreeNode> nodes_;     // BFS layout, root at 0
  std::vector<std::uint32_t> leaves_; // leaf ids, Morton order
};

}  // namespace gbpol
