#include "octree/octree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "support/morton.hpp"

namespace gbpol {

Octree Octree::build(std::span<const Vec3> points, const BuildParams& params) {
  Octree tree;
  if (points.empty()) return tree;

  // Morton-sort the points once; everything else works on contiguous ranges.
  // A caller-pinned domain (BuildParams::domain) replaces the fitted box so
  // codes stay comparable across rebuilds over perturbed point sets.
  const Aabb box = params.domain.empty() ? bounding_box(points) : params.domain;
  const std::vector<std::uint64_t> raw_codes = morton::encode_points(points, box);
  tree.perm_ = morton::sort_permutation(raw_codes);

  const std::size_t n = points.size();
  tree.points_.resize(n);
  std::vector<std::uint64_t> codes(n);
  for (std::size_t i = 0; i < n; ++i) {
    tree.points_[i] = points[tree.perm_[i]];
    codes[i] = raw_codes[tree.perm_[i]];
  }

  const std::uint32_t leaf_cap = std::max<std::uint32_t>(1, params.leaf_capacity);
  const int max_depth = std::clamp(params.max_depth, 0, 20);

  // Breadth-first construction: children of each split node are appended as
  // one contiguous block, giving the cache-friendly linear layout.
  OctreeNode root;
  root.begin = 0;
  root.end = static_cast<std::uint32_t>(n);
  root.depth = 0;
  tree.nodes_.push_back(root);

  for (std::uint32_t id = 0; id < tree.nodes_.size(); ++id) {
    // Take copies of the fields we need: push_back below may reallocate.
    const std::uint32_t begin = tree.nodes_[id].begin;
    const std::uint32_t end = tree.nodes_[id].end;
    const int depth = tree.nodes_[id].depth;
    if (end - begin <= leaf_cap || depth >= max_depth) continue;

    const int shift = 3 * (20 - depth);
    // Partition the range by the 3-bit Morton digit of this level. The range
    // is sorted, so each octant is a contiguous sub-range found by scanning.
    std::uint32_t child_begin = begin;
    std::int32_t first_child = -1;
    std::uint8_t child_count = 0;
    while (child_begin < end) {
      const std::uint64_t digit = (codes[child_begin] >> shift) & 7u;
      std::uint32_t child_end = child_begin + 1;
      while (child_end < end && ((codes[child_end] >> shift) & 7u) == digit) ++child_end;
      OctreeNode child;
      child.begin = child_begin;
      child.end = child_end;
      child.depth = static_cast<std::uint8_t>(depth + 1);
      if (first_child < 0) first_child = static_cast<std::int32_t>(tree.nodes_.size());
      tree.nodes_.push_back(child);
      ++child_count;
      child_begin = child_end;
    }
    // A single child octant means all codes share this digit; splitting
    // further would recurse without progress only if ALL remaining bits are
    // equal — the depth bound still terminates that case, so keep the child.
    tree.nodes_[id].first_child = first_child;
    tree.nodes_[id].child_count = child_count;
  }

  // Geometry aggregates: centroid, then enclosing radius about the centroid.
  for (OctreeNode& node : tree.nodes_) {
    Vec3 c;
    for (std::uint32_t i = node.begin; i < node.end; ++i) c += tree.points_[i];
    node.centroid = c / static_cast<double>(node.count());
    double r2 = 0.0;
    for (std::uint32_t i = node.begin; i < node.end; ++i)
      r2 = std::max(r2, distance2(tree.points_[i], node.centroid));
    node.radius = std::sqrt(r2);
  }

  // Leaves in Morton order (sorted by range start).
  for (std::uint32_t id = 0; id < tree.nodes_.size(); ++id)
    if (tree.nodes_[id].is_leaf()) tree.leaves_.push_back(id);
  std::sort(tree.leaves_.begin(), tree.leaves_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return tree.nodes_[a].begin < tree.nodes_[b].begin;
            });
  return tree;
}

void Octree::refit(std::span<const Vec3> new_points) {
  assert(new_points.size() == points_.size());
  for (std::size_t slot = 0; slot < points_.size(); ++slot)
    points_[slot] = new_points[perm_[slot]];
  for (OctreeNode& node : nodes_) {
    Vec3 c;
    for (std::uint32_t i = node.begin; i < node.end; ++i) c += points_[i];
    node.centroid = c / static_cast<double>(node.count());
    double r2 = 0.0;
    for (std::uint32_t i = node.begin; i < node.end; ++i)
      r2 = std::max(r2, distance2(points_[i], node.centroid));
    node.radius = std::sqrt(r2);
  }
}

int Octree::height() const {
  int h = 0;
  for (const OctreeNode& n : nodes_) h = std::max(h, static_cast<int>(n.depth));
  return h;
}

MemoryFootprint Octree::footprint() const {
  MemoryFootprint fp;
  fp.add_array<Vec3>(points_.size());
  fp.add_array<std::uint32_t>(perm_.size());
  fp.add_array<OctreeNode>(nodes_.size());
  fp.add_array<std::uint32_t>(leaves_.size());
  return fp;
}

}  // namespace gbpol
