// Append-only campaign journal: one CRC-guarded text line per job state
// transition (queued -> running -> done / failed(reason) / quarantined).
//
// The journal is the durable half of the resumable campaign layer
// (harness/campaign.hpp): a killed sweep replays the journal on restart,
// folds the records into per-job state, and re-runs only jobs that never
// reached `done`. Replay is idempotent — folding the same records twice
// yields the same state — and torn tails are harmless: a record is only
// honoured if its line is complete (newline-terminated) and its CRC32
// matches, so a crash mid-append loses at most the record being written.
//
// Line format (space-separated, detail percent-encoded):
//   GBJ1 <seq> <state> <attempt> <error_class> <job_id> <detail> crc=<hex8>
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "support/error_class.hpp"

namespace gbpol::ckpt {

enum class JobState { kQueued, kRunning, kDone, kFailed, kQuarantined };

constexpr std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kQuarantined: return "quarantined";
  }
  return "queued";
}

struct JournalRecord {
  std::uint64_t seq = 0;  // assigned by append(); replay order tiebreaker
  JobState state = JobState::kQueued;
  int attempt = 0;        // 1-based attempt number for running/failed records
  ErrorClass error = ErrorClass::kNone;
  std::string job;        // job id (percent-encoded on disk)
  std::string detail;     // done: result payload; failed: reason message
};

class Journal {
 public:
  // Opens (creating if absent) and replays `path`. An empty path keeps the
  // journal purely in memory — useful for one-shot campaigns and tests.
  explicit Journal(std::string path = {});

  // Appends, assigns the record's seq, and flushes so a subsequent kill
  // cannot lose it. Append failures are remembered (`healthy()` turns
  // false) but never throw: journaling must not take the campaign down.
  void append(JournalRecord record);

  const std::vector<JournalRecord>& records() const { return records_; }
  const std::string& path() const { return path_; }
  bool healthy() const { return healthy_; }

  // Parses a journal file, silently skipping corrupt or truncated lines.
  static std::vector<JournalRecord> replay_file(const std::string& path);

  // One-line encode/decode (exposed for tests). decode returns false on a
  // malformed or CRC-failing line.
  static std::string encode(const JournalRecord& record);
  static bool decode(const std::string& line, JournalRecord& record);

 private:
  std::string path_;
  std::ofstream out_;
  std::vector<JournalRecord> records_;
  std::uint64_t next_seq_ = 0;
  bool healthy_ = true;
};

}  // namespace gbpol::ckpt
