#include "ckpt/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "ckpt/snapshot.hpp"  // crc32

namespace gbpol::ckpt {
namespace {

// Percent-encode so ids/details with spaces, newlines or '%' survive the
// space-separated line format. Printable ASCII minus ' ' and '%' passes
// through untouched, keeping journals human-readable.
std::string encode_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    if (c > 0x20 && c < 0x7F && c != '%') {
      out.push_back(static_cast<char>(c));
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out.append(buf);
    }
  }
  if (out.empty()) out = "%00";  // empty fields would break tokenization
  return out;
}

std::string decode_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        const char c = static_cast<char>(hi * 16 + lo);
        if (c != '\0') out.push_back(c);
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

JobState parse_state(const std::string& s, bool& ok) {
  ok = true;
  if (s == "queued") return JobState::kQueued;
  if (s == "running") return JobState::kRunning;
  if (s == "done") return JobState::kDone;
  if (s == "failed") return JobState::kFailed;
  if (s == "quarantined") return JobState::kQuarantined;
  ok = false;
  return JobState::kQueued;
}

}  // namespace

std::string Journal::encode(const JournalRecord& record) {
  std::ostringstream body;
  body << "GBJ1 " << record.seq << ' ' << to_string(record.state) << ' '
       << record.attempt << ' ' << gbpol::to_string(record.error) << ' '
       << encode_field(record.job) << ' ' << encode_field(record.detail);
  const std::string s = body.str();
  char crc[16];
  std::snprintf(crc, sizeof(crc), " crc=%08x", crc32(s.data(), s.size()));
  return s + crc;
}

bool Journal::decode(const std::string& line, JournalRecord& record) {
  const std::size_t crc_at = line.rfind(" crc=");
  if (crc_at == std::string::npos || line.size() != crc_at + 13) return false;
  unsigned stored = 0;
  if (std::sscanf(line.c_str() + crc_at, " crc=%08x", &stored) != 1) return false;
  if (crc32(line.data(), crc_at) != stored) return false;

  std::istringstream tokens(line.substr(0, crc_at));
  std::string magic, state, error, job, detail;
  if (!(tokens >> magic >> record.seq >> state >> record.attempt >> error >> job >>
        detail))
    return false;
  if (magic != "GBJ1") return false;
  bool ok = false;
  record.state = parse_state(state, ok);
  if (!ok) return false;
  record.error = parse_error_class(error);
  record.job = decode_field(job);
  record.detail = decode_field(detail);
  return true;
}

std::vector<JournalRecord> Journal::replay_file(const std::string& path) {
  std::vector<JournalRecord> records;
  std::ifstream is(path);
  if (!is) return records;
  std::string line;
  while (std::getline(is, line)) {
    // A torn tail shows up as a final line without the trailing newline;
    // getline still returns it, but its CRC (or format) check fails below.
    JournalRecord record;
    if (decode(line, record)) records.push_back(std::move(record));
  }
  return records;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  records_ = replay_file(path_);
  for (const JournalRecord& r : records_) next_seq_ = std::max(next_seq_, r.seq + 1);
  out_.open(path_, std::ios::app);
  healthy_ = static_cast<bool>(out_);
}

void Journal::append(JournalRecord record) {
  record.seq = next_seq_++;
  if (out_.is_open()) {
    out_ << encode(record) << '\n';
    out_.flush();
    if (!out_) healthy_ = false;
  }
  records_.push_back(std::move(record));
}

}  // namespace gbpol::ckpt
