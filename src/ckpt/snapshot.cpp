#include "ckpt/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>

#include "obs/trace.hpp"

namespace gbpol::ckpt {
namespace {

constexpr char kMagic[8] = {'G', 'B', 'C', 'K', 'P', 'T', '1', '\n'};

// Generous sanity bound applied before any allocation driven by on-disk
// sizes: a torn header must not be able to request terabytes.
constexpr std::uint64_t kMaxSectionDoubles = 1ull << 32;
constexpr std::uint32_t kMaxSections = 64;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

template <typename T>
void put(std::vector<std::byte>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

// Bounds-checked reader over the loaded file image.
struct Reader {
  const std::byte* p;
  std::size_t left;
  template <typename T>
  bool get(T& value) {
    if (left < sizeof(T)) return false;
    std::memcpy(&value, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }
};

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::initializer_list<std::uint64_t> words) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t w : words) {
    for (int b = 0; b < 8; ++b) {
      h ^= (w >> (8 * b)) & 0xFFu;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

bool write_snapshot(const std::string& path, const Snapshot& snap) {
  std::vector<std::byte> body;  // everything after the magic, before the CRC
  put(body, snap.version);
  put(body, snap.rank);
  put(body, snap.ranks);
  put(body, static_cast<std::uint32_t>(snap.phase));
  put(body, snap.cursor);
  put(body, snap.job_key);
  put(body, static_cast<std::uint32_t>(snap.sections.size()));
  for (const std::vector<double>& sec : snap.sections) {
    put(body, static_cast<std::uint64_t>(sec.size()));
    const std::size_t at = body.size();
    body.resize(at + sec.size() * sizeof(double));
    // Empty sections are legal (e.g. a phase-entry ledger); data() is null
    // then and memcpy's nonnull contract forbids it even for size 0.
    if (!sec.empty())
      std::memcpy(body.data() + at, sec.data(), sec.size() * sizeof(double));
  }
  const std::uint32_t crc = crc32(body.data(), body.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(kMagic, sizeof(kMagic));
    os.write(reinterpret_cast<const char*>(body.data()),
             static_cast<std::streamsize>(body.size()));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!os) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<Snapshot> read_snapshot(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) return std::nullopt;
  const std::streamsize size = is.tellg();
  if (size < static_cast<std::streamsize>(sizeof(kMagic) + sizeof(std::uint32_t)))
    return std::nullopt;
  std::vector<std::byte> image(static_cast<std::size_t>(size));
  is.seekg(0);
  if (!is.read(reinterpret_cast<char*>(image.data()), size)) return std::nullopt;

  if (std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  const std::size_t body_size = image.size() - sizeof(kMagic) - sizeof(std::uint32_t);
  const std::byte* body = image.data() + sizeof(kMagic);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, body + body_size, sizeof(stored_crc));
  if (crc32(body, body_size) != stored_crc) return std::nullopt;

  Reader r{body, body_size};
  Snapshot snap;
  std::uint32_t phase = 0, n_sections = 0;
  if (!r.get(snap.version) || !r.get(snap.rank) || !r.get(snap.ranks) ||
      !r.get(phase) || !r.get(snap.cursor) || !r.get(snap.job_key) ||
      !r.get(n_sections))
    return std::nullopt;
  if (snap.version != kSnapshotVersion) return std::nullopt;
  if (phase > static_cast<std::uint32_t>(Phase::kEpol)) return std::nullopt;
  if (n_sections > kMaxSections) return std::nullopt;
  snap.phase = static_cast<Phase>(phase);
  snap.sections.resize(n_sections);
  for (std::vector<double>& sec : snap.sections) {
    std::uint64_t count = 0;
    if (!r.get(count) || count > kMaxSectionDoubles ||
        r.left < count * sizeof(double))
      return std::nullopt;
    sec.resize(count);
    if (count != 0) std::memcpy(sec.data(), r.p, count * sizeof(double));
    r.p += count * sizeof(double);
    r.left -= count * sizeof(double);
  }
  if (r.left != 0) return std::nullopt;  // trailing garbage
  return snap;
}

SnapshotStore::SnapshotStore(std::string dir, int ranks, std::uint64_t job_key)
    : dir_(std::move(dir)), ranks_(ranks), job_key_(job_key) {}

std::string SnapshotStore::path_for(Phase phase, std::uint32_t rank,
                                    std::uint64_t cursor) const {
  char name[64];
  std::snprintf(name, sizeof(name), "ph%u_r%u_c%llu.ck",
                static_cast<unsigned>(phase), static_cast<unsigned>(rank),
                static_cast<unsigned long long>(cursor));
  return dir_ + "/" + name;
}

std::string SnapshotStore::save(const Snapshot& snap) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return {};
  const std::string path = path_for(snap.phase, snap.rank, snap.cursor);
  if (!write_snapshot(path, snap)) return {};
  // The tmp+rename above has completed: this commit event logically precedes
  // the kill poll it guards (drivers snapshot, then poll) — the ordering
  // trace_invariants_test pins.
  obs::emit(obs::EventKind::kCheckpointCommit, snap.cursor, 0,
            static_cast<std::uint8_t>(snap.phase));
  return path;
}

std::optional<std::vector<Snapshot>> SnapshotStore::load_latest() const {
  // phase -> rank -> cursors present (descending), parsed from file names;
  // validity is only established by actually reading the candidate.
  std::map<std::uint32_t, std::map<std::uint32_t, std::vector<std::uint64_t>>,
           std::greater<>>
      index;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    unsigned phase = 0, rank = 0;
    unsigned long long cursor = 0;
    const std::string name = entry.path().filename().string();
    if (std::sscanf(name.c_str(), "ph%u_r%u_c%llu.ck", &phase, &rank, &cursor) != 3)
      continue;
    if (rank >= static_cast<unsigned>(ranks_)) continue;
    index[phase][rank].push_back(cursor);
  }
  if (ec) return std::nullopt;

  for (auto& [phase, per_rank] : index) {
    if (per_rank.size() != static_cast<std::size_t>(ranks_)) continue;
    std::vector<Snapshot> set(static_cast<std::size_t>(ranks_));
    bool complete = true;
    for (auto& [rank, cursors] : per_rank) {
      std::sort(cursors.begin(), cursors.end(), std::greater<>());
      bool found = false;
      for (const std::uint64_t cursor : cursors) {
        const std::string path =
            path_for(static_cast<Phase>(phase), rank, cursor);
        std::optional<Snapshot> snap = read_snapshot(path);
        if (!snap) {
          // Torn/corrupt payload in an existing file: count it as a detected
          // corruption (the CRC caught it) and fall back to the older cursor
          // — the recovery ladder's snapshot rung.
          obs::add_corruption_detected(static_cast<int>(rank));
          obs::emit(obs::EventKind::kCorruptionDetect, cursor, 0,
                    /*site=*/3);
          continue;
        }
        if (snap->ranks != static_cast<std::uint32_t>(ranks_) ||
            snap->job_key != job_key_ || snap->rank != rank ||
            snap->phase != static_cast<Phase>(phase))
          continue;
        set[rank] = std::move(*snap);
        found = true;
        break;
      }
      if (!found) {
        complete = false;  // this phase has no valid file for `rank`:
        break;             // fall back to the previous phase entirely
      }
    }
    if (complete) return set;
  }
  return std::nullopt;
}

void append_chunk_ledger(Snapshot& snap, const std::vector<std::uint32_t>& ids,
                         const std::vector<std::vector<double>>& partials) {
  std::vector<double> index;
  index.reserve(ids.size());
  for (const std::uint32_t id : ids) index.push_back(static_cast<double>(id));
  snap.sections.push_back(std::move(index));
  for (const std::vector<double>& p : partials) snap.sections.push_back(p);
}

ChunkLedgerSections read_chunk_ledger(const Snapshot& snap,
                                      std::size_t first_section) {
  ChunkLedgerSections out;
  if (first_section >= snap.sections.size()) return out;
  const std::vector<double>& index = snap.sections[first_section];
  if (snap.sections.size() - first_section - 1 != index.size()) return out;
  out.ids.reserve(index.size());
  for (const double d : index) {
    // Chunk ids round-trip exactly through doubles (< 2^53); anything
    // negative or fractional means the sections are not a ledger.
    if (d < 0.0 || d != static_cast<double>(static_cast<std::uint32_t>(d)))
      return out;
    out.ids.push_back(static_cast<std::uint32_t>(d));
  }
  out.partials.assign(snap.sections.begin() +
                          static_cast<std::ptrdiff_t>(first_section + 1),
                      snap.sections.end());
  out.ok = true;
  return out;
}

}  // namespace gbpol::ckpt
