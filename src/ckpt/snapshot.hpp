// Versioned, CRC-checksummed binary snapshots of per-rank solver state.
//
// A snapshot is keyed to a LOGICAL point in the distributed schedule — the
// driver phase it was taken in plus a leaf-range cursor inside that phase —
// never to wall time. Restoring every rank to snapshots of the same phase
// therefore lands the whole job on a consistent cut: between collectives no
// messages are in flight, so "all ranks inside phase P, each at its own
// cursor" replays the remaining schedule exactly (the chunked evaluation
// loops in core/drivers.cpp deposit into accumulator slots in the same
// per-slot order as an uninterrupted full-range pass, which is what makes
// the resumed E_pol and Born radii bit-identical, 0 ulp).
//
// Torn or corrupt files (truncated write, flipped bytes, version bump) are
// DETECTED — magic + version + whole-payload CRC32 — and simply skipped by
// the store, which falls back to the previous cursor, the previous phase, or
// a clean cold start. A snapshot is never silently trusted.
//
// On-disk layout (all little-endian, doubles raw IEEE-754):
//   8  bytes  magic "GBCKPT1\n"
//   u32 version   u32 rank   u32 ranks   u32 phase
//   u64 cursor    u64 job_key
//   u32 section_count, then per section: u64 count + count doubles
//   u32 CRC32 over everything after the magic
// Files are written to "<path>.tmp" then renamed, so a crash mid-write
// leaves at worst a stale .tmp, never a half-written .ck under a valid name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

namespace gbpol::ckpt {

// Polynomial 0xEDB88320 (zlib/IEEE), table-driven. `seed` chains calls.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

// FNV-1a over 64-bit words; the drivers hash the job shape (atom/leaf counts,
// rank count, division, traversal) into a key so a store populated by a
// DIFFERENT job can never be resumed from.
std::uint64_t fnv1a64(std::initializer_list<std::uint64_t> words);

constexpr std::uint32_t kSnapshotVersion = 1;

// The distributed driver's resumable phases, in schedule order. A snapshot
// at phase P contains everything needed to skip phases < P (including the
// results of the collectives separating them).
enum class Phase : std::uint32_t {
  kBornAccum = 0,  // partial Born integrals; payload: accumulator, cursor = q-leaf
  kPush = 1,       // post-allreduce; payload: reduced accumulator
  kEpol = 2,       // post-allgatherv; payload: Born radii + raw energy sums,
                   // cursor = atom-tree leaf
};

struct Snapshot {
  std::uint32_t version = kSnapshotVersion;
  std::uint32_t rank = 0;
  std::uint32_t ranks = 0;
  Phase phase = Phase::kBornAccum;
  std::uint64_t cursor = 0;   // absolute leaf index reached within `phase`
  std::uint64_t job_key = 0;
  std::vector<std::vector<double>> sections;
};

// Serialize + CRC + atomic-rename. Returns false (never throws) on I/O
// failure: checkpointing is an optimization, losing a snapshot must not take
// the run down with it.
bool write_snapshot(const std::string& path, const Snapshot& snap);

// nullopt on ANY defect: missing file, short read, bad magic, unknown
// version, CRC mismatch, or section sizes inconsistent with the byte count.
std::optional<Snapshot> read_snapshot(const std::string& path);

// --- balanced-path migrated-chunk ledger ---------------------------------
// The balanced driver (core/balance.hpp) checkpoints per-rank sets of
// completed chunks plus each chunk's partial buffer, so resume-after-steal
// is exact: a chunk is restored wherever it was computed (possibly on a
// thief) or recomputed from scratch — either way the partial is identical.
// Layout appended to Snapshot::sections: one index section holding the done
// chunk ids as doubles, then each done chunk's partial in the same order.
void append_chunk_ledger(Snapshot& snap, const std::vector<std::uint32_t>& ids,
                         const std::vector<std::vector<double>>& partials);

struct ChunkLedgerSections {
  bool ok = false;
  std::vector<std::uint32_t> ids;
  std::vector<std::vector<double>> partials;  // parallel to ids
};

// Reads a ledger back starting at `first_section` (sections before it belong
// to the caller, e.g. the Born radii in a kEpol snapshot). Returns ok=false
// on any structural inconsistency — the caller treats that like a corrupt
// snapshot and cold-starts the chunk.
ChunkLedgerSections read_chunk_ledger(const Snapshot& snap,
                                      std::size_t first_section);

// When to checkpoint. Attached to a driver RunConfig; an empty dir disables
// the whole subsystem (zero overhead on the default path).
struct CheckpointPolicy {
  std::string dir;                        // snapshot directory; empty = off
  bool resume = false;                    // load latest consistent set first
  std::uint32_t chunk_leaves = 16;        // leaves per evaluation chunk
  std::uint32_t every_k_chunks = 4;       // snapshot every K chunks; 0 = off
  std::uint32_t every_n_collectives = 1;  // phase-entry snapshot cadence; 0 = off
  // Caller-supplied word folded into every driver's job_key. The trajectory
  // driver (core/incremental.hpp) sets this to the step index so snapshots
  // from different steps of one campaign can never satisfy each other's
  // resume, even though molecule shape and run configuration are identical.
  std::uint64_t job_salt = 0;
  bool enabled() const { return !dir.empty(); }
};

// Directory of per-rank snapshot files named "ph<P>_r<R>_c<C>.ck". Ranks
// write independently (distinct files); the reader reconstructs the latest
// CONSISTENT set: the highest phase at which every rank has a valid
// snapshot, each rank at its highest valid cursor within that phase.
class SnapshotStore {
 public:
  SnapshotStore(std::string dir, int ranks, std::uint64_t job_key);

  // Best-effort write (directory created on demand). Thread-safe across
  // ranks: file names embed the rank, so writers never collide. Returns the
  // path the snapshot was committed under, or "" on failure — the integrity
  // layer uses the path to target scheduled snapshot-byte corruption.
  std::string save(const Snapshot& snap) const;

  // Latest consistent set, indexed by rank, or nullopt for a cold start.
  // Corrupt candidates are skipped (falling back to an older cursor, then an
  // older phase); snapshots from a different job_key or rank count are
  // treated as corrupt. Each EXISTING candidate file whose payload fails
  // validation is surfaced as a corruption detection to obs (recovery is the
  // fallback itself: newest clean snapshot, else cold start).
  std::optional<std::vector<Snapshot>> load_latest() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(Phase phase, std::uint32_t rank, std::uint64_t cursor) const;

  std::string dir_;
  int ranks_ = 0;
  std::uint64_t job_key_ = 0;
};

}  // namespace gbpol::ckpt
