// Skew-stress A/B of the cross-rank balance policies (DESIGN.md "Load
// balancing"): a bound complex plus distant sparse fragments yields leaves
// whose occupancy — and therefore modeled chunk cost — varies wildly, the
// regime where a static even split strands most ranks behind the one that
// drew the dense region. Runs kStatic (canonical fold), kCostModel and
// kSteal at 8 ranks, checks the three energies agree to the last bit, and
// writes bench_out/balance.json (schema-versioned RunResult documents plus
// the headline max-compute ratios).
//
// Acceptance target (ISSUE 5): kSteal improves the compute makespan
// (max over ranks of compute + straggler surplus) by >= 1.3x over kStatic.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header(
      "Balance", "Cross-rank balance policies on a skewed molecule (8 ranks)");
  // The skew: one dense bound complex surrounded by a halo of 700 tiny
  // fragments scattered over a much larger volume. The fragments outnumber
  // the core's leaves ~5:1, so most of the leaf-id space is near-trivial
  // work, while the core — pushed off-center so its leaves form ONE
  // contiguous run in the tree's DFS leaf order instead of straddling all
  // eight root octants — lands almost entirely inside a single rank's even-
  // split window. That is the layout a static split handles worst: one rank
  // owns nearly all the near-field work while its peers idle on thin leaves.
  Molecule mol = molgen::bound_complex(7000, 41001);
  mol.translate(Vec3{120, 120, 120});
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  const auto unit = [&lcg] {  // deterministic in [-1, 1)
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(lcg >> 11) / 4503599627370496.0 - 1.0;
  };
  for (int f = 0; f < 700; ++f) {
    Molecule fragment =
        molgen::synthetic_protein(6, 41100 + static_cast<std::uint64_t>(f));
    fragment.translate(Vec3{220 * unit(), 220 * unit(), 220 * unit()});
    mol.append(fragment);
  }
  // Fat leaves (capacity 64) + coarse quadrature: near-field kernel work per
  // leaf grows with occupancy^2 while per-leaf traversal overhead stays
  // flat, and the coarse grid keeps the (evenly spread) Born quadrature
  // phase from diluting the atom-tree skew — together they make the real
  // compute kernel-dominated, the regime where occupancy skew matters.
  PreparedMolecule pm{std::move(mol), {}, {}};
  pm.quad = surface::molecular_surface_quadrature(
      pm.mol, {.grid_spacing = 6.0, .dunavant_degree = 1, .kappa = 2.3});
  pm.prep = Prepared::build(pm.mol, pm.quad, /*leaf_capacity=*/64);
  std::printf("molecule: %zu atoms (deliberately skewed layout)\n", pm.mol.size());

  const int ranks = 8;
  const ApproxParams params;
  const GBConstants constants;
  const Engine engine(pm.prep, params, constants);

  struct Entry {
    const char* name;
    BalancePolicy policy;
    RunResult result;
  };
  std::vector<Entry> entries = {{"static", BalancePolicy::kStatic, {}},
                                {"cost_model", BalancePolicy::kCostModel, {}},
                                {"steal", BalancePolicy::kSteal, {}}};
  for (Entry& e : entries) {
    RunOptions options = distributed_options(ranks);
    options.balance = e.policy;
    options.canonical_reduction = true;  // identical fold for all three
    options.balance_chunk_leaves = 1;    // fine-grained chunks: room to steal
    e.result = engine.run(options);
  }

  // The 0-ulp contract is part of what this bench certifies: a speedup from
  // a policy that changed the answer would be worthless.
  const RunResult& baseline = entries[0].result;
  for (const Entry& e : entries)
    if (e.result.energy != baseline.energy) {
      std::fprintf(stderr, "FAIL: policy %s diverged: %.17g vs %.17g\n", e.name,
                   e.result.energy, baseline.energy);
      return 1;
    }

  Table table({"policy", "max compute(s)", "modeled(s)", "comm(s)",
               "migrated", "steal grants", "speedup vs static"});
  for (const Entry& e : entries)
    table.add_row(
        {e.name, Table::num(e.result.max_compute_seconds(), 4),
         Table::num(e.result.modeled_seconds(), 4),
         Table::num(e.result.comm_seconds, 5),
         Table::integer(static_cast<long long>(e.result.migrated_chunks)),
         Table::integer(static_cast<long long>(e.result.steal_grants)),
         Table::num(baseline.max_compute_seconds() / e.result.max_compute_seconds(),
                    3)});
  harness::emit_table(table, "balance_stress");

  // bench_out/balance.json: one schema-v1 RunResult document per policy plus
  // the headline ratios, in the same JSON dialect as metrics.json.
  obs::json::Object root;
  root.emplace_back("schema_version", obs::json::Value(1));
  root.emplace_back("ranks", obs::json::Value(ranks));
  root.emplace_back("atoms", obs::json::Value(static_cast<std::uint64_t>(pm.mol.size())));
  obs::json::Object runs;
  for (const Entry& e : entries)
    runs.emplace_back(e.name, run_result_to_json(e.result, e.name));
  root.emplace_back("runs", obs::json::Value(std::move(runs)));
  const double steal_speedup =
      baseline.max_compute_seconds() / entries[2].result.max_compute_seconds();
  root.emplace_back("cost_model_speedup",
                    obs::json::Value(baseline.max_compute_seconds() /
                                     entries[1].result.max_compute_seconds()));
  root.emplace_back("steal_speedup", obs::json::Value(steal_speedup));
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::ofstream out("bench_out/balance.json");
  out << obs::json::Value(std::move(root)).dump() << '\n';
  out.close();
  std::printf("\nwrote bench_out/balance.json (steal speedup %.3fx)\n",
              steal_speedup);

  if (steal_speedup < 1.3) {
    std::fprintf(stderr, "FAIL: steal speedup %.3fx below the 1.3x target\n",
                 steal_speedup);
    return 1;
  }
  return 0;
}
