// Ablation (§V-E): approximate math on/off. Paper: turning approximate math
// on shifted the error by 4-5% and reduced running times by ~1.42x on
// average.
//
// Besides the molecule-level A/B, this bench records the PRIMITIVE-level
// accuracy/speed point: scalar libm vs scalar fast_rsqrt/fast_exp
// (Schraudolph/Quake) vs the AVX2 rsqrt-with-Newton-refinement and vector
// exp that the SIMD dispatch path substitutes for libm. Written to
// bench_out/ablation_math_primitives.json. GBPOL_ABLATION_FAST=1 runs only
// this primitive probe (used by scripts/check.sh; the molecule suite needs
// naive reference runs that take minutes).
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "core/approx_math.hpp"
#include "core/drivers.hpp"
#include "core/kernels_simd.hpp"
#include "core/naive.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace {

using namespace gbpol;

// Best-of-reps seconds for summing fn over xs (DoNotOptimize-style sink via
// volatile so the loop is not folded away).
template <typename F>
double best_sum_seconds(const std::vector<double>& xs, int reps, F&& fn) {
  volatile double sink = 0.0;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    sink = sink + fn(xs.data(), xs.size());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// Accuracy + throughput of the three math-primitive tiers over the operand
// ranges the E_pol kernel actually sees (rsqrt over f_GB^2, exp over the
// negative still-factor argument).
void emit_primitives_point() {
  constexpr int kSamples = 20001;
  constexpr int kReps = 7;
  constexpr std::size_t kN = 1u << 16;

  // Accuracy: max relative error vs libm on a dense sweep.
  const double fast_rsqrt_err = fast_rsqrt_max_rel_error(1e-2, 1e4, kSamples);
  const double fast_exp_err = fast_exp_max_rel_error(-40.0, 0.0, kSamples);
  const double simd_rsqrt_err = simd_rsqrt_max_rel_error(1e-2, 1e4, kSamples);
  const double simd_exp_err = simd_exp_max_rel_error(-40.0, 0.0, kSamples);

  // Throughput: sum of 1/sqrt(x) resp. exp(x) over a fixed random array.
  Rng rng(2012);
  std::vector<double> rs(kN), es(kN);
  for (double& v : rs) v = rng.uniform(1e-2, 1e4);
  for (double& v : es) v = rng.uniform(-40.0, 0.0);

  const double libm_rsqrt_s = best_sum_seconds(rs, kReps, [](const double* x, std::size_t n) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += 1.0 / std::sqrt(x[i]);
    return s;
  });
  const double fast_rsqrt_s = best_sum_seconds(rs, kReps, [](const double* x, std::size_t n) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += fast_rsqrt(x[i]);
    return s;
  });
  const double libm_exp_s = best_sum_seconds(es, kReps, [](const double* x, std::size_t n) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += std::exp(x[i]);
    return s;
  });
  const double fast_exp_s = best_sum_seconds(es, kReps, [](const double* x, std::size_t n) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += fast_exp(x[i]);
    return s;
  });
  const bool simd = simd_kernel_table() != nullptr;
  const double simd_rsqrt_s =
      simd ? best_sum_seconds(rs, kReps, [](const double* x, std::size_t n) {
        return simd_rsqrt_sum(x, n);
      })
           : 0.0;
  const double simd_exp_s =
      simd ? best_sum_seconds(es, kReps, [](const double* x, std::size_t n) {
        return simd_exp_sum(x, n);
      })
           : 0.0;

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::ofstream out("bench_out/ablation_math_primitives.json");
  if (out) {
    out << "{\n";
    out << "  \"dispatch_path\": \"" << simd_dispatch_name() << "\",\n";
    out << "  \"samples\": " << kSamples << ", \"array_n\": " << kN << ",\n";
    out << "  \"rsqrt\": {\"fast_max_rel_error\": " << fast_rsqrt_err
        << ", \"simd_newton_max_rel_error\": " << simd_rsqrt_err
        << ", \"libm_seconds\": " << libm_rsqrt_s
        << ", \"fast_seconds\": " << fast_rsqrt_s
        << ", \"simd_newton_seconds\": " << simd_rsqrt_s << "},\n";
    out << "  \"exp\": {\"fast_max_rel_error\": " << fast_exp_err
        << ", \"simd_max_rel_error\": " << simd_exp_err
        << ", \"libm_seconds\": " << libm_exp_s
        << ", \"fast_seconds\": " << fast_exp_s
        << ", \"simd_seconds\": " << simd_exp_s << "}\n";
    out << "}\n";
    std::printf("wrote bench_out/ablation_math_primitives.json\n");
  }

  std::printf("\nmath primitives (dispatch: %s, max rel err vs libm | time for %zu ops)\n",
              simd_dispatch_name(), kN);
  std::printf("  rsqrt: fast %.2e | simd-newton %.2e ; libm %.4fs fast %.4fs simd %.4fs\n",
              fast_rsqrt_err, simd_rsqrt_err, libm_rsqrt_s, fast_rsqrt_s, simd_rsqrt_s);
  std::printf("  exp:   fast %.2e | simd        %.2e ; libm %.4fs fast %.4fs simd %.4fs\n",
              fast_exp_err, simd_exp_err, libm_exp_s, fast_exp_s, simd_exp_s);
}

}  // namespace

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Approximate math (fast rsqrt/exp) on vs off");

  if (const char* fast = std::getenv("GBPOL_ABLATION_FAST");
      fast != nullptr && fast[0] == '1') {
    emit_primitives_point();
    return 0;
  }

  const auto suite = suite_subset(/*stride=*/12, /*max_atoms=*/8000);
  std::printf("%zu molecules\n", suite.size());

  const GBConstants constants;
  RunningStats speedup_stats, shift_stats;
  Table table({"atoms", "time off(s)", "time on(s)", "speedup", "err off(%)",
               "err on(%)"});
  for (const Molecule& mol : suite) {
    const PreparedMolecule pm = prepare(mol);
    const NaiveResult naive = run_naive(pm.mol, pm.quad, constants);
    ApproxParams off;
    ApproxParams on;
    on.approx_math = true;
    // Serial driver isolates the kernel cost from scheduling noise.
    const RunResult r_off = Engine(pm.prep, off, constants).run(serial_options());
    const RunResult r_on = Engine(pm.prep, on, constants).run(serial_options());
    const double speedup = r_off.compute_seconds / r_on.compute_seconds;
    const double err_off = percent_error(r_off.energy, naive.energy);
    const double err_on = percent_error(r_on.energy, naive.energy);
    speedup_stats.add(speedup);
    shift_stats.add(err_on - err_off);
    table.add_row({Table::integer(static_cast<long long>(mol.size())),
                   Table::num(r_off.compute_seconds, 4), Table::num(r_on.compute_seconds, 4),
                   Table::num(speedup, 3), Table::num(err_off, 4), Table::num(err_on, 4)});
  }
  harness::emit_table(table, "ablation_approx_math");
  std::printf("\naverage speedup %.3fx (paper: ~1.42x); average error shift %+.2f%% "
              "(paper: 4-5%%)\n",
              speedup_stats.mean(), shift_stats.mean());
  emit_primitives_point();
  return 0;
}
