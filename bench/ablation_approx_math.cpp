// Ablation (§V-E): approximate math on/off. Paper: turning approximate math
// on shifted the error by 4-5% and reduced running times by ~1.42x on
// average.
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"
#include "core/naive.hpp"
#include "support/stats.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Approximate math (fast rsqrt/exp) on vs off");
  const auto suite = suite_subset(/*stride=*/12, /*max_atoms=*/8000);
  std::printf("%zu molecules\n", suite.size());

  const GBConstants constants;
  RunningStats speedup_stats, shift_stats;
  Table table({"atoms", "time off(s)", "time on(s)", "speedup", "err off(%)",
               "err on(%)"});
  for (const Molecule& mol : suite) {
    const PreparedMolecule pm = prepare(mol);
    const NaiveResult naive = run_naive(pm.mol, pm.quad, constants);
    ApproxParams off;
    ApproxParams on;
    on.approx_math = true;
    // Serial driver isolates the kernel cost from scheduling noise.
    const RunResult r_off = Engine(pm.prep, off, constants).run(serial_options());
    const RunResult r_on = Engine(pm.prep, on, constants).run(serial_options());
    const double speedup = r_off.compute_seconds / r_on.compute_seconds;
    const double err_off = percent_error(r_off.energy, naive.energy);
    const double err_on = percent_error(r_on.energy, naive.energy);
    speedup_stats.add(speedup);
    shift_stats.add(err_on - err_off);
    table.add_row({Table::integer(static_cast<long long>(mol.size())),
                   Table::num(r_off.compute_seconds, 4), Table::num(r_on.compute_seconds, 4),
                   Table::num(speedup, 3), Table::num(err_off, 4), Table::num(err_on, 4)});
  }
  harness::emit_table(table, "ablation_approx_math");
  std::printf("\naverage speedup %.3fx (paper: ~1.42x); average error shift %+.2f%% "
              "(paper: 4-5%%)\n",
              speedup_stats.mean(), shift_stats.mean());
  return 0;
}
