// Serving-throughput figure (DESIGN.md "Serving layer"): a multi-tenant
// request mix — repeat scoring, docking-style jittered poses, and one-off
// molecules — served by gbpol::Service (batched dispatch + Prepared cache +
// memoization + delta routing) against the per-request cold baseline that
// re-marches the surface and rebuilds the preparation for every request.
//
// Writes bench_out/serving.json (requests/sec for both sides, p50/p99
// modeled latency, per-request accounting) and self-gates the ISSUE 10
// acceptance targets:
//   * batched+cached serving >= 3x the per-request cold throughput;
//   * every served energy is 0 ulp against its path-appropriate cold twin
//     (direct Engine::run for cold/cached/memoized requests, the mirror
//     ReuseMode::kCold TrajectoryDriver for delta-routed poses).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/incremental.hpp"
#include "serve/service.hpp"
#include "support/timer.hpp"

namespace {

using namespace gbpol;
using namespace gbpol::bench;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

// Deterministic sub-skin docking jitter: displace a couple of "ligand" atoms
// by < 0.1 A, leaving the rest anchored for the delta path to reuse.
Molecule jittered(const Molecule& base, int pose) {
  Molecule mol = base;
  std::uint64_t state = 0x9e3779b97f4a7c15ull * (pose + 1);
  const std::size_t moved = std::max<std::size_t>(1, mol.size() / 100);
  for (Atom& a : mol.atoms().subspan(0, moved)) {
    const auto next = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return (static_cast<double>(state % 2001) - 1000.0) / 10000.0;  // +-0.1
    };
    a.pos.x += next();
    a.pos.y += next();
    a.pos.z += next();
  }
  return mol;
}

enum class Kind { kAnchor, kRepeat, kPose, kSingleton };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kAnchor: return "anchor";
    case Kind::kRepeat: return "repeat";
    case Kind::kPose: return "pose";
    case Kind::kSingleton: return "singleton";
  }
  return "?";
}

struct Labeled {
  Molecule mol;
  Kind kind;
  int family;  // -1 for singletons
};

}  // namespace

int main() {
  harness::print_figure_header(
      "Serving", "Batched+cached service vs per-request cold baseline");

  // Request mix: 4 base molecules ("tenant" targets), each scored once cold,
  // re-scored repeatedly (memo hits), and re-evaluated at jittered docking
  // poses (delta routing); plus 8 one-off singletons that stay cold.
  const int kFamilies = 4;
  const int kPosesPerFamily = 3;
  const int kRepeatsPerFamily =
      std::max(1, harness::env_int("GBPOL_REPS", 12));
  const int kSingletons = 8;

  std::vector<Molecule> bases;
  for (int b = 0; b < kFamilies; ++b)
    bases.push_back(molgen::synthetic_protein(200 + 15 * b, 21 + b));

  std::vector<Labeled> stream;
  for (int b = 0; b < kFamilies; ++b)
    stream.push_back({bases[b], Kind::kAnchor, b});
  int singletons_used = 0;
  for (int round = 0; round < kPosesPerFamily; ++round) {
    for (int b = 0; b < kFamilies; ++b)
      stream.push_back({jittered(bases[b], round + 1), Kind::kPose, b});
    for (int s = 0; s < 2 && singletons_used < kSingletons; ++s, ++singletons_used)
      stream.push_back({molgen::synthetic_protein(120 + 9 * singletons_used,
                                                  41 + singletons_used),
                        Kind::kSingleton, -1});
  }
  for (; singletons_used < kSingletons; ++singletons_used)
    stream.push_back({molgen::synthetic_protein(120 + 9 * singletons_used,
                                                41 + singletons_used),
                      Kind::kSingleton, -1});
  for (int k = 0; k < kRepeatsPerFamily; ++k)
    for (int b = 0; b < kFamilies; ++b)
      stream.push_back({bases[b], Kind::kRepeat, b});
  const std::size_t n_requests = stream.size();

  ServiceOptions options;
  options.campaign_dir = "-";  // throughput figure; durability benched by tests
  options.run.trace_out = "-";
  const surface::QuadratureParams quad = bench_quadrature_params();
  const ApproxParams params;
  const GBConstants constants;

  const auto make_request = [&](const Molecule& mol) {
    ServeRequest req;
    req.mol = mol;
    req.params = params;
    req.constants = constants;
    req.surface = quad;
    return req;
  };

  // --- per-request cold baseline: fresh surface + Prepared + Engine::run
  // for every request, the pre-Service serving cost. Its results double as
  // the 0-ulp twins for every non-delta served request.
  std::vector<RunResult> cold_twin(n_requests);
  std::vector<double> cold_latency(n_requests);
  WallTimer cold_timer;
  for (std::size_t i = 0; i < n_requests; ++i) {
    WallTimer one;
    const Molecule& mol = stream[i].mol;
    const surface::SurfaceQuadrature sq =
        surface::molecular_surface_quadrature(mol, quad);
    const Prepared prep = Prepared::build(mol, sq, params.leaf_capacity);
    cold_twin[i] = Engine(prep, params, constants).run(options.run);
    cold_latency[i] = one.seconds();
  }
  const double cold_seconds = cold_timer.seconds();

  // --- batched+cached service: submit the whole stream, drain once.
  Service service(options);
  WallTimer serve_timer;
  for (const Labeled& item : stream) service.submit(make_request(item.mol));
  const std::vector<ServeResult> served = service.drain();
  const double serve_seconds = serve_timer.seconds();
  if (served.size() != n_requests) {
    std::fprintf(stderr, "FAIL: served %zu of %zu requests\n", served.size(),
                 n_requests);
    return 1;
  }

  // --- 0-ulp verification against the path-appropriate twin. Delta-routed
  // poses mirror a ReuseMode::kCold TrajectoryDriver per family, anchored at
  // the family's first geometry and fed the same pose sequence in serve
  // order (the core/incremental differential contract).
  std::vector<std::unique_ptr<TrajectoryDriver>> mirrors(kFamilies);
  RunOptions mirror_run = options.run;
  mirror_run.reuse = ReuseMode::kCold;
  std::size_t verified_delta = 0, verified_direct = 0;
  for (std::size_t i = 0; i < n_requests; ++i) {
    const ServeResult& s = served[i];
    if (s.path == ServePath::kDelta) {
      const int fam = stream[i].family;
      if (!mirrors[fam]) {
        TrajectoryOptions topt;
        topt.skin = options.delta_skin;
        topt.surface = quad;
        mirrors[fam] = std::make_unique<TrajectoryDriver>(bases[fam], topt,
                                                          params, constants);
      }
      std::vector<Vec3> pos;
      for (const Atom& a : stream[i].mol.atoms()) pos.push_back(a.pos);
      const RunResult twin = mirrors[fam]->step(pos, mirror_run);
      if (s.result.energy != twin.energy ||
          s.result.born_sorted != twin.born_sorted) {
        std::fprintf(stderr,
                     "FAIL: request %zu (%s) diverged from its kCold mirror "
                     "driver: %.17g vs %.17g\n",
                     i, kind_name(stream[i].kind), s.result.energy,
                     twin.energy);
        return 1;
      }
      ++verified_delta;
    } else {
      if (s.result.energy != cold_twin[i].energy ||
          s.result.born_sorted != cold_twin[i].born_sorted) {
        std::fprintf(stderr,
                     "FAIL: request %zu (%s, path %s) diverged from its "
                     "direct cold twin: %.17g vs %.17g\n",
                     i, kind_name(stream[i].kind),
                     serve_path_name(s.path), s.result.energy,
                     cold_twin[i].energy);
        return 1;
      }
      ++verified_direct;
    }
  }

  std::vector<double> served_latency;
  for (const ServeResult& s : served)
    served_latency.push_back(s.result.queue_seconds + s.result.serve_seconds);

  const double rps_cold = static_cast<double>(n_requests) / cold_seconds;
  const double rps_served = static_cast<double>(n_requests) / serve_seconds;
  const double speedup = rps_served / rps_cold;
  const ServiceStats stats = service.stats();

  Table table({"side", "requests", "wall (s)", "req/s", "p50 (s)", "p99 (s)"});
  table.add_row({"per-request cold", Table::integer(static_cast<long long>(n_requests)),
                 Table::num(cold_seconds, 4), Table::num(rps_cold, 2),
                 Table::num(percentile(cold_latency, 0.50), 5),
                 Table::num(percentile(cold_latency, 0.99), 5)});
  table.add_row({"batched+cached", Table::integer(static_cast<long long>(n_requests)),
                 Table::num(serve_seconds, 4), Table::num(rps_served, 2),
                 Table::num(percentile(served_latency, 0.50), 5),
                 Table::num(percentile(served_latency, 0.99), 5)});
  harness::emit_table(table, "serving");

  std::printf(
      "\npaths: cold %llu, cache hits %llu / misses %llu, memo %llu, "
      "delta %llu; verified %zu delta + %zu direct twins\n",
      static_cast<unsigned long long>(stats.cold),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.memo_hits),
      static_cast<unsigned long long>(stats.delta_routed), verified_delta,
      verified_direct);
  std::printf("throughput: %.2f req/s served vs %.2f req/s cold (%.2fx)\n",
              rps_served, rps_cold, speedup);

  obs::json::Object root;
  root.emplace_back("schema_version", obs::json::Value(1));
  root.emplace_back("requests",
                    obs::json::Value(static_cast<std::uint64_t>(n_requests)));
  root.emplace_back("cold_seconds", obs::json::Value(cold_seconds));
  root.emplace_back("served_seconds", obs::json::Value(serve_seconds));
  root.emplace_back("requests_per_second_cold", obs::json::Value(rps_cold));
  root.emplace_back("requests_per_second_served",
                    obs::json::Value(rps_served));
  root.emplace_back("speedup", obs::json::Value(speedup));
  root.emplace_back("p50_latency_seconds_cold",
                    obs::json::Value(percentile(cold_latency, 0.50)));
  root.emplace_back("p99_latency_seconds_cold",
                    obs::json::Value(percentile(cold_latency, 0.99)));
  root.emplace_back("p50_latency_seconds_served",
                    obs::json::Value(percentile(served_latency, 0.50)));
  root.emplace_back("p99_latency_seconds_served",
                    obs::json::Value(percentile(served_latency, 0.99)));
  {
    obs::json::Object st;
    st.emplace_back("cold", obs::json::Value(stats.cold));
    st.emplace_back("cache_hits", obs::json::Value(stats.cache_hits));
    st.emplace_back("cache_misses", obs::json::Value(stats.cache_misses));
    st.emplace_back("cache_evictions", obs::json::Value(stats.cache_evictions));
    st.emplace_back("memo_hits", obs::json::Value(stats.memo_hits));
    st.emplace_back("delta_routed", obs::json::Value(stats.delta_routed));
    root.emplace_back("service_stats", obs::json::Value(std::move(st)));
  }
  {
    obs::json::Array arr;
    for (std::size_t i = 0; i < n_requests; ++i) {
      const ServeResult& s = served[i];
      obs::json::Object o;
      o.emplace_back("kind", obs::json::Value(std::string(kind_name(stream[i].kind))));
      o.emplace_back("path",
                     obs::json::Value(std::string(serve_path_name(s.path))));
      o.emplace_back("queue_seconds", obs::json::Value(s.result.queue_seconds));
      o.emplace_back("serve_seconds", obs::json::Value(s.result.serve_seconds));
      o.emplace_back("energy", obs::json::Value(s.result.energy));
      arr.push_back(obs::json::Value(std::move(o)));
    }
    root.emplace_back("per_request", obs::json::Value(std::move(arr)));
  }
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::ofstream out("bench_out/serving.json");
  out << obs::json::Value(std::move(root)).dump() << '\n';
  out.close();
  std::printf("wrote bench_out/serving.json (speedup %.2fx)\n", speedup);

  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: batched+cached throughput %.2fx the per-request cold "
                 "baseline, below the 3x gate\n",
                 speedup);
    return 1;
  }
  return 0;
}
