// Ablation (paper §VI future work): replicated-data (Fig. 4) vs
// data-distributed pipeline. Reports per-rank payload memory, ghost counts,
// communication traffic and modeled time for both schemes across rank counts.
#include <iostream>

#include "bench_common.hpp"
#include "core/distributed_data.hpp"
#include "core/drivers.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Replicated (Fig. 4) vs data-distributed");
  const double scale = harness::env_scale();
  const Molecule shell = molgen::virus_shell(
      static_cast<std::size_t>(60000 * scale), 606060, 0.2, "dist-shell");
  std::printf("molecule: %zu atoms\n", shell.size());
  const PreparedMolecule pm = prepare(shell, 48);

  ApproxParams params;
  const GBConstants constants;
  const mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  Table table({"P", "scheme", "modeled(s)", "comm(s)", "payload/rank(MiB)",
               "ghost atoms", "bytes sent(MiB)", "E_pol"});
  for (const int ranks : {4, 12, 48}) {
    RunConfig config;
    config.ranks = ranks;
    config.cluster = cluster;

    RunOptions rep_options = distributed_options(ranks);
    rep_options.cluster = cluster;
    const RunResult rep = Engine(pm.prep, params, constants).run(rep_options);
    table.add_row({Table::integer(ranks), "replicated",
                   Table::num(rep.modeled_seconds(), 4), Table::num(rep.comm_seconds, 5),
                   Table::num(static_cast<double>(rep.replicated_bytes) /
                                  static_cast<double>(ranks) / (1 << 20),
                              4),
                   "0", "-", Table::num(rep.energy, 6)});

    const DataDistResult dist =
        run_oct_data_distributed(pm.prep, params, constants, config);
    table.add_row(
        {Table::integer(ranks), "data-distributed", Table::num(dist.modeled_seconds(), 4),
         Table::num(dist.comm_seconds, 5),
         Table::num(static_cast<double>(dist.payload_bytes_per_rank_max +
                                        dist.bins_bytes_per_rank) /
                        (1 << 20),
                    4),
         Table::integer(static_cast<long long>(dist.ghost_atoms_total)),
         Table::num(static_cast<double>(dist.bytes_sent) / (1 << 20), 4),
         Table::num(dist.energy, 6)});
  }
  harness::emit_table(table, "ablation_data_distribution");
  std::printf("\n(replicated payload/rank counts the FULL per-rank copy incl. octrees;\n"
              " data-distributed counts own+ghost payload plus the shared bins)\n");
  return 0;
}
