// Fig. 10: error and running time vs the E_pol approximation parameter —
// Born-radius eps fixed at 0.9, E_pol eps swept 0.1..0.9, approximate math
// OFF, OCT_MPI+CILK across the suite; reports avg +/- std of the percent
// error (vs naive) and the average modeled time, as in the paper.
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"
#include "core/naive.hpp"
#include "support/stats.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Fig. 10", "Error & time vs E_pol epsilon (Born eps = 0.9)");
  const auto suite = suite_subset(/*stride=*/10, /*max_atoms=*/6000);
  std::printf("%zu molecules (GBPOL_FULL=1 for all; capped at 6k atoms by default)\n",
              suite.size());

  const GBConstants constants;
  const mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  // Naive references and Prepared structures once per molecule.
  struct Entry {
    PreparedMolecule pm;
    double naive_energy;
  };
  std::vector<Entry> entries;
  for (const Molecule& mol : suite) {
    Entry e{prepare(mol), 0.0};
    e.naive_energy = run_naive(e.pm.mol, e.pm.quad, constants).energy;
    entries.push_back(std::move(e));
  }

  Table table({"eps_epol", "avg err(%)", "std err(%)", "max err(%)", "avg time(s)"});
  for (const double eps : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    ApproxParams params;
    params.eps_born = 0.9;
    params.eps_epol = eps;
    params.approx_math = false;
    RunningStats err_stats;
    RunningStats time_stats;
    for (const Entry& e : entries) {
      RunOptions hybrid = distributed_options(2, 6);
      hybrid.cluster = cluster;
      const RunResult r = Engine(e.pm.prep, params, constants).run(hybrid);
      err_stats.add(percent_error(r.energy, e.naive_energy));
      time_stats.add(r.modeled_seconds());
    }
    table.add_row({Table::num(eps, 2), Table::num(err_stats.mean(), 4),
                   Table::num(err_stats.stddev(), 4), Table::num(err_stats.max(), 4),
                   Table::num(time_stats.mean(), 4)});
  }
  harness::emit_table(table, "fig10_epsilon_sweep");
  return 0;
}
