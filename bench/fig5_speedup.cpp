// Fig. 5: speedup vs running time on one node — OCT_MPI and OCT_MPI+CILK on
// the BTV substitute across increasing core counts of the modeled cluster;
// speedup is relative to each variant's 12-core (one node) run, as in the
// paper. Also reports the replicated-memory gap (§V-B: 8.2 GB vs 1.4 GB on
// BTV at one node — a 5.86x ratio).
//
// Each variant runs under BOTH traversal engines (the `traversal` column):
// `list` is the default flat interaction-list engine with batched SoA
// kernels and list-chunk task granularity; `recursive` is the per-leaf
// recursive walk kept as the A/B baseline. Speedups are computed within each
// (variant, traversal) pair so scaling curves stay comparable.
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Fig. 5", "Speedup with increasing cores (BTV substitute)");
  const double scale = harness::env_scale();
  const Molecule btv = molgen::btv_like(0.5 * scale);  // default 120k atoms
  std::printf("molecule: %s (%zu atoms; paper BTV: 6M atoms)\n", btv.name().c_str(),
              btv.size());
  const PreparedMolecule pm = prepare(btv.name() == "" ? btv : btv, 48);
  std::printf("quadrature points: %zu; octree build %.2f s\n", pm.quad.size(),
              pm.prep.build_seconds);

  const GBConstants constants;
  const mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  struct Mode {
    const char* name;
    TraversalMode traversal;
  };
  const Mode modes[] = {{"list", TraversalMode::kList},
                        {"recursive", TraversalMode::kRecursive}};

  Table table({"cores", "variant", "traversal", "modeled(s)", "speedup vs 12",
               "memory(MiB)", "E_pol"});
  BenchMetrics metrics("fig5_speedup");
  const ApproxParams params;  // 0.9/0.9; traversal comes from RunOptions
  const Engine engine(pm.prep, params, constants);
  for (const Mode& mode : modes) {
    double base_mpi = 0.0, base_hybrid = 0.0;
    for (const int cores : {12, 24, 48, 96, 144}) {
      RunOptions mpi;
      mpi.mode = EngineMode::kDistributed;
      mpi.ranks = cores;
      mpi.cluster = cluster;
      mpi.traversal = mode.traversal;
      const RunResult a = metrics.traced(
          std::string("OCT_MPI ") + mode.name + " cores=" + std::to_string(cores),
          [&] { return engine.run(mpi); });
      if (cores == 12) base_mpi = a.modeled_seconds();
      table.add_row({Table::integer(cores), "OCT_MPI", mode.name,
                     Table::num(a.modeled_seconds(), 4),
                     Table::num(base_mpi / a.modeled_seconds(), 3),
                     Table::num(static_cast<double>(a.replicated_bytes) / (1 << 20), 4),
                     Table::num(a.energy, 6)});

      RunOptions hybrid = mpi;
      hybrid.ranks = cores / 6;
      hybrid.threads_per_rank = 6;
      const RunResult b = metrics.traced(
          std::string("OCT_MPI+CILK ") + mode.name + " cores=" +
              std::to_string(cores),
          [&] { return engine.run(hybrid); });
      if (cores == 12) base_hybrid = b.modeled_seconds();
      table.add_row({Table::integer(cores), "OCT_MPI+CILK", mode.name,
                     Table::num(b.modeled_seconds(), 4),
                     Table::num(base_hybrid / b.modeled_seconds(), 3),
                     Table::num(static_cast<double>(b.replicated_bytes) / (1 << 20), 4),
                     Table::num(b.energy, 6)});
    }
  }
  harness::emit_table(table, "fig5_speedup");
  metrics.write("fig5_speedup");
  return 0;
}
