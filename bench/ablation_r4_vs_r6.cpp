// Ablation (paper §II, Grycuk 2003): the r^4 Coulomb-field kernel (Eq. 3)
// vs the surface r^6 kernel (Eq. 4). On an exact sphere the r^6 radii are
// exact while r^4 overestimates off-center radii; on proteins the two give
// systematically different radii and energies at the same traversal cost.
#include <iostream>

#include "bench_common.hpp"
#include "core/analytic.hpp"
#include "core/drivers.hpp"
#include "core/naive.hpp"
#include "support/stats.hpp"
#include "surface/sphere_quad.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "r^4 (Eq. 3) vs r^6 (Eq. 4) Born kernels");

  // Part 1: sphere ground truth — per-offset radii from both kernels.
  {
    const double b = 6.0;
    const auto quad = surface::fibonacci_sphere_quadrature(40000, Vec3{}, b);
    Table table({"offset/b", "exact R", "r6 R", "r4 R", "r4 overest.(%)"});
    for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      const Atom atom{Vec3{frac * b, 0, 0}, 0.5, 1.0};
      const double exact = analytic::born_radius_in_sphere(frac * b, b);
      const double r6 = naive_born_radii_r6({&atom, 1}, quad)[0];
      const double r4 = naive_born_radii_r4({&atom, 1}, quad)[0];
      table.add_row({Table::num(frac, 2), Table::num(exact, 5), Table::num(r6, 5),
                     Table::num(r4, 5), Table::num((r4 / exact - 1.0) * 100.0, 3)});
    }
    std::printf("\nsphere ground truth (radius %.1f A):\n", b);
    harness::emit_table(table, "ablation_r4_vs_r6_sphere");
  }

  // Part 2: protein suite — octree pipeline with each kernel.
  const auto suite = suite_subset(/*stride=*/20, /*max_atoms=*/6000);
  const GBConstants constants;
  Table table({"atoms", "E r6", "E r4", "mean |R4-R6|/R6 (%)", "r6 err vs naive(%)"});
  for (const Molecule& mol : suite) {
    const PreparedMolecule pm = prepare(mol);
    const NaiveResult naive = run_naive(pm.mol, pm.quad, constants);
    ApproxParams p6;
    ApproxParams p4;
    p4.radius_kernel = RadiusKernel::kR4;
    const RunResult r6 = Engine(pm.prep, p6, constants).run(serial_options());
    const RunResult r4 = Engine(pm.prep, p4, constants).run(serial_options());
    double mean_dev = 0.0;
    for (std::size_t i = 0; i < r6.born_sorted.size(); ++i)
      mean_dev += std::abs(r4.born_sorted[i] - r6.born_sorted[i]) / r6.born_sorted[i];
    mean_dev = mean_dev / static_cast<double>(r6.born_sorted.size()) * 100.0;
    table.add_row({Table::integer(static_cast<long long>(mol.size())),
                   Table::num(r6.energy, 6), Table::num(r4.energy, 6),
                   Table::num(mean_dev, 3),
                   Table::num(percent_error(r6.energy, naive.energy), 3)});
  }
  std::printf("\nprotein suite:\n");
  harness::emit_table(table, "ablation_r4_vs_r6_suite");
  return 0;
}
