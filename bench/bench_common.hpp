// Shared setup for the figure benches: suite subsets, surface parameters
// tuned for benchmarking (coarser quadrature than the tests — the paper's
// large molecules run at a few q-points per atom), and env knobs.
//
// Env knobs (all benches):
//   GBPOL_BENCH_SCALE  multiplies virus-shell sizes        (default 1.0)
//   GBPOL_REPS         repetition count                    (bench-specific)
//   GBPOL_FULL=1       run the full 84-molecule suite      (default subset)
//   GBPOL_CAMPAIGN_DIR directory for per-bench campaign journals; set it to
//                      make a killed sweep resumable (completed sweep points
//                      are skipped and rebuilt from their stored payloads)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/naive.hpp"
#include "core/prepared.hpp"
#include "harness/campaign.hpp"
#include "harness/experiment.hpp"
#include "harness/packages.hpp"
#include "harness/report.hpp"
#include "molecule/generate.hpp"
#include "molecule/suite.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "surface/quadrature.hpp"

namespace gbpol::bench {

inline surface::QuadratureParams bench_quadrature_params() {
  // Coarser than the test default: ~2-8 q-points per atom, the paper's
  // operating regime for large molecules.
  return {.grid_spacing = 2.0, .dunavant_degree = 1, .kappa = 2.3};
}

struct PreparedMolecule {
  Molecule mol;
  surface::SurfaceQuadrature quad;
  Prepared prep;
};

inline PreparedMolecule prepare(Molecule mol, std::uint32_t leaf_capacity = 32) {
  PreparedMolecule pm{std::move(mol), {}, {}};
  pm.quad = surface::molecular_surface_quadrature(pm.mol, bench_quadrature_params());
  pm.prep = Prepared::build(pm.mol, pm.quad, leaf_capacity);
  return pm;
}

// Campaign config for a bench: journaled (resumable) iff GBPOL_CAMPAIGN_DIR
// is set, in-memory otherwise. The journal lives at
// $GBPOL_CAMPAIGN_DIR/<bench_name>.journal (directory created on demand).
inline harness::CampaignConfig campaign_config(const std::string& bench_name) {
  harness::CampaignConfig cfg;
  const char* dir = std::getenv("GBPOL_CAMPAIGN_DIR");
  if (dir != nullptr && *dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
    cfg.journal_path = std::string(dir) + "/" + bench_name + ".journal";
  }
  return cfg;
}

// ZDock-like suite subset: every `stride`-th molecule unless GBPOL_FULL=1.
inline std::vector<Molecule> suite_subset(int stride, std::size_t max_atoms = 16000) {
  molgen::SuiteSpec spec;
  spec.max_atoms = max_atoms;
  const bool full = harness::env_int("GBPOL_FULL", 0) != 0;
  std::vector<Molecule> all = molgen::zdock_like_suite(spec);
  if (full) return all;
  std::vector<Molecule> subset;
  for (std::size_t i = 0; i < all.size(); i += static_cast<std::size_t>(stride))
    subset.push_back(std::move(all[i]));
  return subset;
}

}  // namespace gbpol::bench
