// Shared setup for the figure benches: suite subsets, surface parameters
// tuned for benchmarking (coarser quadrature than the tests — the paper's
// large molecules run at a few q-points per atom), and env knobs.
//
// Env knobs (all benches):
//   GBPOL_BENCH_SCALE  multiplies virus-shell sizes        (default 1.0)
//   GBPOL_REPS         repetition count                    (bench-specific)
//   GBPOL_FULL=1       run the full 84-molecule suite      (default subset)
//
// Campaign-journal and trace destinations are RunOptions fields
// (campaign_dir / trace_out); their env defaults (GBPOL_CAMPAIGN_DIR /
// GBPOL_TRACE_OUT) are documented in core/engine.hpp and resolved ONLY
// through gbpol::resolved_campaign_dir / resolved_trace_out — benches pass a
// RunOptions through campaign_config() / BenchMetrics instead of reading the
// environment themselves.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/interaction_lists.hpp"
#include "core/kernels_simd.hpp"
#include "core/naive.hpp"
#include "core/prepared.hpp"
#include "harness/campaign.hpp"
#include "harness/experiment.hpp"
#include "harness/packages.hpp"
#include "harness/report.hpp"
#include "molecule/generate.hpp"
#include "molecule/suite.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "surface/quadrature.hpp"

namespace gbpol::bench {

inline surface::QuadratureParams bench_quadrature_params() {
  // Coarser than the test default: ~2-8 q-points per atom, the paper's
  // operating regime for large molecules.
  return {.grid_spacing = 2.0, .dunavant_degree = 1, .kappa = 2.3};
}

struct PreparedMolecule {
  Molecule mol;
  surface::SurfaceQuadrature quad;
  Prepared prep;
};

inline PreparedMolecule prepare(Molecule mol, std::uint32_t leaf_capacity = 32) {
  PreparedMolecule pm{std::move(mol), {}, {}};
  pm.quad = surface::molecular_surface_quadrature(pm.mol, bench_quadrature_params());
  pm.prep = Prepared::build(pm.mol, pm.quad, leaf_capacity);
  return pm;
}

// Campaign config for a bench: journaled (resumable) iff the resolved
// campaign_dir (RunOptions::campaign_dir, env default GBPOL_CAMPAIGN_DIR —
// see core/engine.hpp) is non-empty, in-memory otherwise. The journal lives
// at <campaign_dir>/<bench_name>.journal (directory created on demand).
inline harness::CampaignConfig campaign_config(const std::string& bench_name,
                                               const RunOptions& options = {}) {
  harness::CampaignConfig cfg;
  const std::string dir = resolved_campaign_dir(options);
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort
    cfg.journal_path = dir + "/" + bench_name + ".journal";
  }
  return cfg;
}

// --- observability adoption ----------------------------------------------
// BenchMetrics brackets labelled runs in tracer sessions and accumulates one
// metrics.json entry (obs/export.hpp schema) per run; write() mirrors the
// document to bench_out/<name>.metrics.json next to the CSV the figure
// already emits. With GBPOL_TRACE_OUT=<path> the first traced run is also
// exported as a Chrome trace_event timeline. Under GBPOL_TRACING=OFF the
// sessions are no-ops and the entries carry empty (but schema-valid)
// snapshots, so the benches build and run unchanged.
class BenchMetrics {
 public:
  // `options` supplies the trace destination (RunOptions::trace_out, env
  // default GBPOL_TRACE_OUT); the default-constructed RunOptions preserves
  // the old env-only behaviour.
  explicit BenchMetrics(std::string figure, const RunOptions& options = {})
      : trace_out_(resolved_trace_out(options)) {
    doc_.figure = std::move(figure);
  }

  // Runs `fn` inside a tracer session, appends its merged metrics under
  // `label`, and returns fn's result. Driver/package results contribute
  // standard context fields; any other return type records metrics only.
  template <typename Fn>
  auto traced(std::string label, Fn&& fn) {
    obs::start_session();
    auto result = std::forward<Fn>(fn)();
    const obs::Trace trace = obs::stop_session();
    obs::MetricsEntry entry;
    entry.label = std::move(label);
    // Every entry records which near-kernel path produced it and the L2 tile
    // budget in effect, so perf regressions in the archives can be attributed
    // to a dispatch or tiling change.
    entry.extra.emplace_back("dispatch_path",
                             obs::json::Value(std::string(simd_dispatch_name())));
    entry.extra.emplace_back(
        "tile_bytes", obs::json::Value(static_cast<std::uint64_t>(default_tile_bytes())));
    using R = std::decay_t<decltype(result)>;
    if constexpr (std::is_same_v<R, RunResult>) {
      entry.extra.emplace_back("energy", obs::json::Value(result.energy));
      entry.extra.emplace_back("ranks", obs::json::Value(result.ranks));
      entry.extra.emplace_back("threads_per_rank",
                               obs::json::Value(result.threads_per_rank));
      entry.extra.emplace_back("modeled_seconds",
                               obs::json::Value(result.modeled_seconds()));
      entry.extra.emplace_back("migrated_chunks",
                               obs::json::Value(result.migrated_chunks));
      entry.extra.emplace_back("steal_grants",
                               obs::json::Value(result.steal_grants));
    } else if constexpr (std::is_same_v<R, harness::PackageRun>) {
      entry.extra.emplace_back("energy", obs::json::Value(result.energy));
      entry.extra.emplace_back("modeled_seconds",
                               obs::json::Value(result.modeled_seconds));
    }
    entry.metrics = trace.metrics;
    doc_.entries.push_back(std::move(entry));
    maybe_export_chrome(trace);
    return result;
  }

  // Mirrors the accumulated document to bench_out/<name>.metrics.json.
  void write(const std::string& name) {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    const std::string path = "bench_out/" + name + ".metrics.json";
    if (obs::write_metrics_json(doc_, path))
      std::printf("metrics: wrote %s (schema v%d, %zu entries)\n", path.c_str(),
                  obs::kMetricsSchemaVersion, doc_.entries.size());
    else
      std::fprintf(stderr, "note: could not write %s\n", path.c_str());
  }

  const obs::MetricsDoc& doc() const { return doc_; }

 private:
  void maybe_export_chrome(const obs::Trace& trace) {
    if (chrome_written_ || trace_out_.empty()) return;
    chrome_written_ = true;
    if (obs::write_chrome_trace(trace, trace_out_))
      std::printf("trace: wrote %s (open in chrome://tracing)\n", trace_out_.c_str());
    else
      std::fprintf(stderr, "note: could not write %s\n", trace_out_.c_str());
  }

  obs::MetricsDoc doc_;
  std::string trace_out_;
  bool chrome_written_ = false;
};

// ZDock-like suite subset: every `stride`-th molecule unless GBPOL_FULL=1.
inline std::vector<Molecule> suite_subset(int stride, std::size_t max_atoms = 16000) {
  molgen::SuiteSpec spec;
  spec.max_atoms = max_atoms;
  const bool full = harness::env_int("GBPOL_FULL", 0) != 0;
  std::vector<Molecule> all = molgen::zdock_like_suite(spec);
  if (full) return all;
  std::vector<Molecule> subset;
  for (std::size_t i = 0; i < all.size(); i += static_cast<std::size_t>(stride))
    subset.push_back(std::move(all[i]));
  return subset;
}

}  // namespace gbpol::bench
