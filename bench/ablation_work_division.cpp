// Ablation (§IV-A): node-based vs atom-based work division. The paper's
// claim: node-node division gives a P-independent error (each rank always
// owns whole tree nodes), while atom-based division's error drifts with the
// process count because division boundaries split tree nodes differently.
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"
#include "core/naive.hpp"
#include "support/stats.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Work division: node-node vs atom-based");
  const PreparedMolecule pm = prepare(molgen::bound_complex(3000, 777));
  const GBConstants constants;
  const NaiveResult naive = run_naive(pm.mol, pm.quad, constants);
  std::printf("molecule: %zu atoms, naive E = %.4f kcal/mol\n", pm.mol.size(),
              naive.energy);

  ApproxParams params;  // 0.9/0.9
  Table table({"P", "node-node E", "node-node err(%)", "atom-based E",
               "atom-based err(%)"});
  for (const int ranks : {1, 2, 4, 8, 16}) {
    RunOptions node;
    node.mode = EngineMode::kDistributed;
    node.ranks = ranks;
    node.cluster = mpisim::ClusterModel::lonestar4();
    node.division = WorkDivision::kNodeNode;
    RunOptions atom = node;
    atom.division = WorkDivision::kAtomBased;
    const Engine engine(pm.prep, params, constants);
    const RunResult a = engine.run(node);
    const RunResult b = engine.run(atom);
    table.add_row({Table::integer(ranks), Table::num(a.energy, 9),
                   Table::num(percent_error(a.energy, naive.energy), 6),
                   Table::num(b.energy, 9),
                   Table::num(percent_error(b.energy, naive.energy), 6)});
  }
  harness::emit_table(table, "ablation_work_division");
  std::printf("\n(node-node error is constant across P; atom-based drifts — §IV-A)\n");
  return 0;
}
