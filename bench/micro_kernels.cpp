// Micro-benchmarks (google-benchmark): the building-block costs underneath
// the figure benches — octree construction/traversal, scheduler overhead,
// collectives, math kernels, surface density evaluation.
#include <benchmark/benchmark.h>

#include "core/approx_math.hpp"
#include "core/born_octree.hpp"
#include "core/drivers.hpp"
#include "molecule/generate.hpp"
#include "mpisim/runtime.hpp"
#include "support/morton.hpp"
#include "support/rng.hpp"
#include "surface/density.hpp"
#include "surface/quadrature.hpp"
#include "ws/parallel_for.hpp"

namespace {

using namespace gbpol;

std::vector<Vec3> random_points(std::size_t n) {
  Rng rng(123);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts)
    p = Vec3{rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100)};
  return pts;
}

void BM_MortonEncode(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)));
  const Aabb box = bounding_box(pts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(morton::encode_points(pts, box));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MortonEncode)->Arg(1 << 12)->Arg(1 << 16);

void BM_OctreeBuild(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Octree::build(pts, {.leaf_capacity = 32, .max_depth = 20}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OctreeBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_FastRsqrt(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(1.0, 1e6);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += fast_rsqrt(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FastRsqrt);

void BM_ExactRsqrt(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(1.0, 1e6);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += 1.0 / std::sqrt(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ExactRsqrt);

void BM_FastExp(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(-40.0, 0.0);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += fast_exp(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FastExp);

void BM_ExactExp(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(-40.0, 0.0);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += std::exp(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ExactExp);

void BM_SchedulerSpawnSync(benchmark::State& state) {
  ws::Scheduler sched(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<long> sum{0};
    ws::parallel_for(sched, 0, 10000, 16, [&](std::size_t lo, std::size_t hi) {
      sum.fetch_add(static_cast<long>(hi - lo), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerSpawnSync)->Arg(2)->Arg(6);

void BM_MpisimAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::Runtime::Config config;
    config.ranks = ranks;
    mpisim::Runtime::run(config, [&](mpisim::Comm& comm) {
      std::vector<double> data(1 << 12, 1.0);
      comm.allreduce_sum(data);
      benchmark::DoNotOptimize(data[0]);
    });
  }
}
BENCHMARK(BM_MpisimAllreduce)->Arg(2)->Arg(8);

void BM_DensityEval(benchmark::State& state) {
  const Molecule mol = molgen::synthetic_protein(5000, 9);
  const surface::DensityField field(mol);
  Rng rng(7);
  const Aabb dom = field.domain();
  std::vector<Vec3> queries(1024);
  for (Vec3& q : queries)
    q = Vec3{rng.uniform(dom.lo.x, dom.hi.x), rng.uniform(dom.lo.y, dom.hi.y),
             rng.uniform(dom.lo.z, dom.hi.z)};
  for (auto _ : state) {
    double sum = 0.0;
    for (const Vec3& q : queries) sum += field.value(q);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DensityEval);

void BM_BornTraversal(benchmark::State& state) {
  const Molecule mol = molgen::synthetic_protein(static_cast<std::size_t>(state.range(0)), 3);
  const auto quad = surface::molecular_surface_quadrature(
      mol, {.grid_spacing = 2.0, .dunavant_degree = 1, .kappa = 2.3});
  const Prepared prep = Prepared::build(mol, quad, 32);
  ApproxParams params;
  const BornSolver solver(prep, params);
  const auto n_leaves = static_cast<std::uint32_t>(prep.q_tree.leaves().size());
  for (auto _ : state) {
    BornAccumulator acc = solver.make_accumulator();
    solver.accumulate_qleaf_range(0, n_leaves, acc);
    benchmark::DoNotOptimize(acc.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BornTraversal)->Arg(2000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
