// Micro-benchmarks (google-benchmark): the building-block costs underneath
// the figure benches — octree construction/traversal, scheduler overhead,
// collectives, math kernels, surface density evaluation, and the near-field
// kernel A/B (scalar AoS recursion baseline vs batched SoA, the
// TraversalMode::kList default). Besides the google-benchmark console
// output, main() writes a machine-readable summary of the kernel A/B to
// bench_out/micro_kernels.json.
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <functional>
#include <filesystem>
#include <fstream>

#include "core/approx_math.hpp"
#include "core/born_octree.hpp"
#include "core/drivers.hpp"
#include "core/epol_octree.hpp"
#include "core/interaction_lists.hpp"
#include "core/kernels_simd.hpp"
#include "molecule/generate.hpp"
#include "mpisim/runtime.hpp"
#include "support/morton.hpp"
#include "support/rng.hpp"
#include "surface/density.hpp"
#include "surface/quadrature.hpp"
#include "ws/parallel_for.hpp"

namespace {

using namespace gbpol;

// Shared molecule + prebuilt interaction lists for the near-kernel A/B
// benches and the JSON summary (built once, on first use).
struct ListFixture {
  Prepared prep;
  std::vector<double> born_sorted;
  InteractionLists born_lists;  // (atom node x q leaf), Fig. 2 decomposition
  InteractionLists epol_lists;  // (atom node x atom leaf), Fig. 3
  std::uint64_t epol_near_pairs = 0;
};

const ListFixture& list_fixture() {
  static const ListFixture* fixture = [] {
    auto* f = new ListFixture();
    const Molecule mol = molgen::synthetic_protein(6000, 3);
    const auto quad = surface::molecular_surface_quadrature(
        mol, {.grid_spacing = 2.0, .dunavant_degree = 1, .kappa = 2.3});
    f->prep = Prepared::build(mol, quad, 32);
    ApproxParams params;
    const BornSolver born_solver(f->prep, params);
    const auto n_qleaves = static_cast<std::uint32_t>(f->prep.q_tree.leaves().size());
    f->born_lists = born_solver.build_lists(0, n_qleaves);
    BornAccumulator acc = born_solver.make_accumulator();
    born_solver.accumulate_lists(f->born_lists, acc);
    f->born_sorted.resize(f->prep.num_atoms());
    born_solver.push_to_atoms(acc, 0, static_cast<std::uint32_t>(f->prep.num_atoms()),
                              f->born_sorted);
    const EpolSolver epol_solver(f->prep, f->born_sorted, params, GBConstants{});
    const auto n_aleaves =
        static_cast<std::uint32_t>(f->prep.atoms_tree.leaves().size());
    f->epol_lists = epol_solver.build_lists(0, n_aleaves);
    f->epol_near_pairs = f->epol_lists.near_point_pairs;
    return f;
  }();
  return *fixture;
}

// One sweep over the Born near list with the scalar AoS kernel (the seed's
// recursive inner loop).
double born_near_sweep_aos(const ListFixture& f, std::vector<double>& atom_s) {
  const Prepared& prep = f.prep;
  for (const InteractionLists::Near& e : f.born_lists.near) {
    const OctreeNode& a = prep.atoms_tree.node(e.target_leaf);
    const OctreeNode& q = prep.q_tree.node(e.source_leaf);
    born_near_aos<6>(prep.atoms_tree.points().data(), a.begin, a.end,
                     prep.q_tree.points().data(), prep.weighted_normal.data(), q.begin,
                     q.end, atom_s.data());
  }
  return atom_s[0];
}

// Same sweep with the batched SoA kernel.
double born_near_sweep_soa(const ListFixture& f, std::vector<double>& atom_s) {
  const Prepared& prep = f.prep;
  for (const InteractionLists::Near& e : f.born_lists.near) {
    const OctreeNode& a = prep.atoms_tree.node(e.target_leaf);
    const OctreeNode& q = prep.q_tree.node(e.source_leaf);
    born_near_soa<6>(prep.q_soa.x.data(), prep.q_soa.y.data(), prep.q_soa.z.data(),
                     prep.q_wn_soa.x.data(), prep.q_wn_soa.y.data(),
                     prep.q_wn_soa.z.data(), q.begin, q.end, prep.atoms_soa.x.data(),
                     prep.atoms_soa.y.data(), prep.atoms_soa.z.data(), a.begin, a.end,
                     atom_s.data());
  }
  return atom_s[0];
}

template <bool kApproxMath>
double epol_near_sweep_aos(const ListFixture& f) {
  const Prepared& prep = f.prep;
  double sum = 0.0;
  for (const InteractionLists::Near& e : f.epol_lists.near) {
    const OctreeNode& u = prep.atoms_tree.node(e.target_leaf);
    const OctreeNode& v = prep.atoms_tree.node(e.source_leaf);
    sum += epol_near_aos<kApproxMath>(prep.atoms_tree.points().data(),
                                      prep.charge.data(), f.born_sorted.data(), u.begin,
                                      u.end, v.begin, v.end);
  }
  return sum;
}

template <bool kApproxMath>
double epol_near_sweep_soa(const ListFixture& f) {
  const Prepared& prep = f.prep;
  double sum = 0.0;
  for (const InteractionLists::Near& e : f.epol_lists.near) {
    const OctreeNode& u = prep.atoms_tree.node(e.target_leaf);
    const OctreeNode& v = prep.atoms_tree.node(e.source_leaf);
    sum += epol_near_soa<kApproxMath>(prep.atoms_soa.x.data(), prep.atoms_soa.y.data(),
                                      prep.atoms_soa.z.data(), prep.charge.data(),
                                      f.born_sorted.data(), u.begin, u.end, v.begin,
                                      v.end);
  }
  return sum;
}

// Same sweeps through the dispatched SIMD kernel table. Callers must check
// simd_kernel_table() != nullptr first.
double born_near_sweep_simd(const ListFixture& f, std::vector<double>& atom_s) {
  const Prepared& prep = f.prep;
  const SimdKernelTable* t = simd_kernel_table();
  for (const InteractionLists::Near& e : f.born_lists.near) {
    const OctreeNode& a = prep.atoms_tree.node(e.target_leaf);
    const OctreeNode& q = prep.q_tree.node(e.source_leaf);
    t->born_near_r6(prep.q_soa.x.data(), prep.q_soa.y.data(), prep.q_soa.z.data(),
                    prep.q_wn_soa.x.data(), prep.q_wn_soa.y.data(),
                    prep.q_wn_soa.z.data(), q.begin, q.end, prep.atoms_soa.x.data(),
                    prep.atoms_soa.y.data(), prep.atoms_soa.z.data(), a.begin, a.end,
                    atom_s.data());
  }
  return atom_s[0];
}

template <bool kApproxMath>
double epol_near_sweep_simd(const ListFixture& f) {
  const Prepared& prep = f.prep;
  const SimdKernelTable* t = simd_kernel_table();
  const auto fn = kApproxMath ? t->epol_near_approx : t->epol_near_exact;
  double sum = 0.0;
  for (const InteractionLists::Near& e : f.epol_lists.near) {
    const OctreeNode& u = prep.atoms_tree.node(e.target_leaf);
    const OctreeNode& v = prep.atoms_tree.node(e.source_leaf);
    sum += fn(prep.atoms_soa.x.data(), prep.atoms_soa.y.data(),
              prep.atoms_soa.z.data(), prep.charge.data(), f.born_sorted.data(),
              u.begin, u.end, v.begin, v.end);
  }
  return sum;
}

std::vector<Vec3> random_points(std::size_t n) {
  Rng rng(123);
  std::vector<Vec3> pts(n);
  for (Vec3& p : pts)
    p = Vec3{rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 100)};
  return pts;
}

void BM_MortonEncode(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)));
  const Aabb box = bounding_box(pts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(morton::encode_points(pts, box));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MortonEncode)->Arg(1 << 12)->Arg(1 << 16);

void BM_OctreeBuild(benchmark::State& state) {
  const auto pts = random_points(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Octree::build(pts, {.leaf_capacity = 32, .max_depth = 20}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OctreeBuild)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17);

void BM_FastRsqrt(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(1.0, 1e6);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += fast_rsqrt(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FastRsqrt);

void BM_ExactRsqrt(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(1.0, 1e6);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += 1.0 / std::sqrt(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ExactRsqrt);

void BM_FastExp(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(-40.0, 0.0);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += fast_exp(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_FastExp);

void BM_ExactExp(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.uniform(-40.0, 0.0);
  for (auto _ : state) {
    double sum = 0.0;
    for (const double x : xs) sum += std::exp(x);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ExactExp);

void BM_SchedulerSpawnSync(benchmark::State& state) {
  ws::Scheduler sched(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<long> sum{0};
    ws::parallel_for(sched, 0, 10000, 16, [&](std::size_t lo, std::size_t hi) {
      sum.fetch_add(static_cast<long>(hi - lo), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerSpawnSync)->Arg(2)->Arg(6);

void BM_MpisimAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::Runtime::Config config;
    config.ranks = ranks;
    mpisim::Runtime::run(config, [&](mpisim::Comm& comm) {
      std::vector<double> data(1 << 12, 1.0);
      comm.allreduce_sum(data);
      benchmark::DoNotOptimize(data[0]);
    });
  }
}
BENCHMARK(BM_MpisimAllreduce)->Arg(2)->Arg(8);

void BM_DensityEval(benchmark::State& state) {
  const Molecule mol = molgen::synthetic_protein(5000, 9);
  const surface::DensityField field(mol);
  Rng rng(7);
  const Aabb dom = field.domain();
  std::vector<Vec3> queries(1024);
  for (Vec3& q : queries)
    q = Vec3{rng.uniform(dom.lo.x, dom.hi.x), rng.uniform(dom.lo.y, dom.hi.y),
             rng.uniform(dom.lo.z, dom.hi.z)};
  for (auto _ : state) {
    double sum = 0.0;
    for (const Vec3& q : queries) sum += field.value(q);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DensityEval);

void BM_BornTraversal(benchmark::State& state) {
  const Molecule mol = molgen::synthetic_protein(static_cast<std::size_t>(state.range(0)), 3);
  const auto quad = surface::molecular_surface_quadrature(
      mol, {.grid_spacing = 2.0, .dunavant_degree = 1, .kappa = 2.3});
  const Prepared prep = Prepared::build(mol, quad, 32);
  ApproxParams params;
  const BornSolver solver(prep, params);
  const auto n_leaves = static_cast<std::uint32_t>(prep.q_tree.leaves().size());
  for (auto _ : state) {
    BornAccumulator acc = solver.make_accumulator();
    solver.accumulate_qleaf_range(0, n_leaves, acc);
    benchmark::DoNotOptimize(acc.flat().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BornTraversal)->Arg(2000)->Arg(8000);

// ---- Near-field kernel A/B: scalar AoS baseline vs batched SoA ------------

void BM_BornNearAoS(benchmark::State& state) {
  const ListFixture& f = list_fixture();
  std::vector<double> atom_s(f.prep.num_atoms(), 0.0);
  for (auto _ : state) benchmark::DoNotOptimize(born_near_sweep_aos(f, atom_s));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.born_lists.near_point_pairs));
}
BENCHMARK(BM_BornNearAoS);

void BM_BornNearSoA(benchmark::State& state) {
  const ListFixture& f = list_fixture();
  std::vector<double> atom_s(f.prep.num_atoms(), 0.0);
  for (auto _ : state) benchmark::DoNotOptimize(born_near_sweep_soa(f, atom_s));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.born_lists.near_point_pairs));
}
BENCHMARK(BM_BornNearSoA);

void BM_EpolNearAoS(benchmark::State& state) {
  const ListFixture& f = list_fixture();
  for (auto _ : state) benchmark::DoNotOptimize(epol_near_sweep_aos<false>(f));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.epol_near_pairs));
}
BENCHMARK(BM_EpolNearAoS);

void BM_EpolNearSoA(benchmark::State& state) {
  const ListFixture& f = list_fixture();
  for (auto _ : state) benchmark::DoNotOptimize(epol_near_sweep_soa<false>(f));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.epol_near_pairs));
}
BENCHMARK(BM_EpolNearSoA);

void BM_BornNearSimd(benchmark::State& state) {
  if (simd_kernel_table() == nullptr) {
    state.SkipWithError("SIMD dispatch inactive");
    return;
  }
  const ListFixture& f = list_fixture();
  std::vector<double> atom_s(f.prep.num_atoms(), 0.0);
  for (auto _ : state) benchmark::DoNotOptimize(born_near_sweep_simd(f, atom_s));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.born_lists.near_point_pairs));
}
BENCHMARK(BM_BornNearSimd);

void BM_EpolNearSimd(benchmark::State& state) {
  if (simd_kernel_table() == nullptr) {
    state.SkipWithError("SIMD dispatch inactive");
    return;
  }
  const ListFixture& f = list_fixture();
  for (auto _ : state) benchmark::DoNotOptimize(epol_near_sweep_simd<false>(f));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.epol_near_pairs));
}
BENCHMARK(BM_EpolNearSimd);

// ---- Engine-level A/B: recursive walk vs prebuilt-list evaluation ---------

void BM_BornListBuild(benchmark::State& state) {
  const ListFixture& f = list_fixture();
  ApproxParams params;
  const BornSolver solver(f.prep, params);
  const auto n = static_cast<std::uint32_t>(f.prep.q_tree.leaves().size());
  for (auto _ : state) benchmark::DoNotOptimize(solver.build_lists(0, n));
}
BENCHMARK(BM_BornListBuild);

void BM_BornListAccumulate(benchmark::State& state) {
  const ListFixture& f = list_fixture();
  ApproxParams params;
  const BornSolver solver(f.prep, params);
  for (auto _ : state) {
    BornAccumulator acc = solver.make_accumulator();
    solver.accumulate_lists(f.born_lists, acc);
    benchmark::DoNotOptimize(acc.flat().data());
  }
}
BENCHMARK(BM_BornListAccumulate);

void BM_BornRecursiveAccumulate(benchmark::State& state) {
  const ListFixture& f = list_fixture();
  ApproxParams params;
  const BornSolver solver(f.prep, params);
  const auto n = static_cast<std::uint32_t>(f.prep.q_tree.leaves().size());
  for (auto _ : state) {
    BornAccumulator acc = solver.make_accumulator();
    solver.accumulate_qleaf_range(0, n, acc);
    benchmark::DoNotOptimize(acc.flat().data());
  }
}
BENCHMARK(BM_BornRecursiveAccumulate);

// ---- bench_out/micro_kernels.json -----------------------------------------

// Best-of-reps wall time of fn(), seconds.
template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// Interleaved best-of-reps for a set of variants of the same kernel: each
// rep times every variant back to back, so a frequency or steal-time drift
// on a shared core hits all variants alike instead of biasing whichever one
// happened to run during the slow window (the gate compares their ratio).
template <std::size_t N>
std::array<double, N> best_seconds_interleaved(
    int reps, const std::array<std::function<double()>, N>& fns) {
  std::array<double, N> best;
  best.fill(1e300);
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < N; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(fns[i]());
      const auto t1 = std::chrono::steady_clock::now();
      best[i] = std::min(best[i], std::chrono::duration<double>(t1 - t0).count());
    }
  }
  return best;
}

struct KernelAB {
  const char* name;
  std::uint64_t pairs;
  double scalar_s;
  double soa_s;
  double simd_s = 0.0;  // 0 when the SIMD dispatch is inactive
  bool gated = false;   // participates in the >= 2x SIMD-vs-SoA check
};

// Minimum dispatched-SIMD-vs-SoA speedup for gated kernels; scripts/check.sh
// runs this binary and fails the push when the gate breaks. Only
// epol_near_exact is gated: its SoA form is serialized on scalar libm calls,
// which is exactly what the explicit kernels exist to fix. The Born kernel
// already autovectorizes under -march=x86-64-v3, so its SIMD ratio is
// recorded but not gated.
constexpr double kSimdGateSpeedup = 2.0;

void write_json(std::ostream& os, const ListFixture& f,
                const std::vector<KernelAB>& kernels, bool gate_pass) {
  os << "{\n";
  os << "  \"molecule_atoms\": " << f.prep.num_atoms() << ",\n";
  os << "  \"quadrature_points\": " << f.prep.q_tree.num_points() << ",\n";
  os << "  \"dispatch_path\": \"" << simd_dispatch_name() << "\",\n";
  os << "  \"tile_bytes\": " << default_tile_bytes() << ",\n";
  os << "  \"simd_gate\": {\"required_speedup\": " << kSimdGateSpeedup
     << ", \"active\": " << (simd_kernel_table() != nullptr ? "true" : "false")
     << ", \"pass\": " << (gate_pass ? "true" : "false") << "},\n";
  os << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const KernelAB& k = kernels[i];
    const double pairs = static_cast<double>(k.pairs);
    os << "    {\"name\": \"" << k.name << "\", \"point_pairs\": " << k.pairs
       << ", \"scalar_aos_seconds\": " << k.scalar_s
       << ", \"soa_seconds\": " << k.soa_s
       << ", \"scalar_aos_pairs_per_second\": " << pairs / k.scalar_s
       << ", \"soa_pairs_per_second\": " << pairs / k.soa_s
       << ", \"soa_speedup\": " << k.scalar_s / k.soa_s;
    if (k.simd_s > 0.0) {
      os << ", \"simd_seconds\": " << k.simd_s
         << ", \"simd_pairs_per_second\": " << pairs / k.simd_s
         << ", \"simd_vs_soa_speedup\": " << k.soa_s / k.simd_s
         << ", \"gated\": " << (k.gated ? "true" : "false");
    }
    os << "}" << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

// Times the scalar-AoS vs batched-SoA vs dispatched-SIMD near kernels over
// the molecule's real near lists, writes the comparison to
// bench_out/micro_kernels.json, and returns false when a gated kernel misses
// the >= 2x SIMD-vs-SoA target (self-gate used by scripts/check.sh).
bool emit_kernel_json() {
  const ListFixture& f = list_fixture();
  constexpr int kReps = 7;
  const bool simd_active = simd_kernel_table() != nullptr;
  std::vector<double> atom_s(f.prep.num_atoms(), 0.0);

  // Each kernel's three variants are timed interleaved (scalar, SoA, SIMD
  // back to back per rep) so shared-core noise cancels out of the ratios.
  const auto measure = [&](std::function<double()> scalar_fn,
                           std::function<double()> soa_fn,
                           std::function<double()> simd_fn) {
    if (!simd_active) simd_fn = [] { return 0.0; };
    const std::array<double, 3> t = best_seconds_interleaved<3>(
        kReps, {std::move(scalar_fn), std::move(soa_fn), std::move(simd_fn)});
    return std::array<double, 3>{t[0], t[1], simd_active ? t[2] : 0.0};
  };

  std::vector<KernelAB> kernels;
  {
    const auto t = measure([&] { return born_near_sweep_aos(f, atom_s); },
                           [&] { return born_near_sweep_soa(f, atom_s); },
                           [&] { return born_near_sweep_simd(f, atom_s); });
    kernels.push_back({"born_near_r6", f.born_lists.near_point_pairs, t[0], t[1],
                       t[2], /*gated=*/false});
  }
  {
    const auto t = measure([&] { return epol_near_sweep_aos<false>(f); },
                           [&] { return epol_near_sweep_soa<false>(f); },
                           [&] { return epol_near_sweep_simd<false>(f); });
    kernels.push_back(
        {"epol_near_exact", f.epol_near_pairs, t[0], t[1], t[2], /*gated=*/true});
  }
  {
    const auto t = measure([&] { return epol_near_sweep_aos<true>(f); },
                           [&] { return epol_near_sweep_soa<true>(f); },
                           [&] { return epol_near_sweep_simd<true>(f); });
    kernels.push_back({"epol_near_approx_math", f.epol_near_pairs, t[0], t[1], t[2],
                       /*gated=*/false});
  }

  bool gate_pass = true;
  if (simd_active) {
    for (const KernelAB& k : kernels)
      if (k.gated && k.soa_s / k.simd_s < kSimdGateSpeedup) gate_pass = false;
  }

  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::ofstream out("bench_out/micro_kernels.json");
  if (!out) {
    std::fprintf(stderr, "note: could not open bench_out/micro_kernels.json\n");
    return gate_pass;
  }
  write_json(out, f, kernels, gate_pass);
  std::printf("wrote bench_out/micro_kernels.json (dispatch: %s)\n",
              simd_dispatch_name());
  for (const KernelAB& k : kernels) {
    if (k.simd_s > 0.0)
      std::printf("  %-22s SoA speedup %.2fx, SIMD vs SoA %.2fx%s\n", k.name,
                  k.scalar_s / k.soa_s, k.soa_s / k.simd_s, k.gated ? " [gated]" : "");
    else
      std::printf("  %-22s SoA speedup %.2fx\n", k.name, k.scalar_s / k.soa_s);
  }
  if (simd_active && !gate_pass)
    std::fprintf(stderr,
                 "micro_kernels: FAIL — gated SIMD kernel below %.1fx vs SoA\n",
                 kSimdGateSpeedup);
  else if (!simd_active)
    std::printf("micro_kernels: SIMD gate skipped (dispatch inactive: %s)\n",
                simd_dispatch_name());
  return gate_pass;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return emit_kernel_json() ? 0 : 1;
}
