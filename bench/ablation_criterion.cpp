// Ablation (DESIGN.md): the Born far-field criterion as PRINTED in the
// paper's Fig. 2 — opening multiplier ((1+e)^(1/6)+1)/((1+e)^(1/6)-1), i.e.
// ~18.7x at eps=0.9 — vs the (1+2/eps) form of the Fig. 3 energy criterion
// that this library uses by default. The printed form's traversal degenerates
// toward all-pairs cost, which is why we read it as a typo.
#include <iostream>

#include "bench_common.hpp"
#include "core/born_octree.hpp"
#include "core/drivers.hpp"
#include "core/naive.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Born far-criterion: consistent vs strict text");
  const PreparedMolecule pm = prepare(molgen::bound_complex(4000, 999));
  const GBConstants constants;
  const auto naive_born = naive_born_radii_r6(pm.mol.atoms(), pm.quad);
  std::printf("molecule: %zu atoms, %zu q-points\n", pm.mol.size(), pm.quad.size());

  Table table({"criterion", "eps", "multiplier", "far terms", "exact pairs",
               "born time(s)", "mean err(%)"});
  for (const bool strict : {false, true}) {
    for (const double eps : {0.5, 0.9}) {
      ApproxParams params;
      params.eps_born = eps;
      params.born_strict_criterion = strict;
      const BornSolver solver(pm.prep, params);
      const auto n_leaves = static_cast<std::uint32_t>(pm.prep.q_tree.leaves().size());
      const auto stats = solver.count_qleaf_range(0, n_leaves);

      ThreadCpuTimer timer;
      BornAccumulator acc = solver.make_accumulator();
      solver.accumulate_qleaf_range(0, n_leaves, acc);
      std::vector<double> born(pm.prep.num_atoms(), 0.0);
      solver.push_to_atoms(acc, 0, static_cast<std::uint32_t>(born.size()), born);
      const double seconds = timer.seconds();

      const auto original = pm.prep.to_original_order(born);
      double mean_err = 0.0;
      for (std::size_t i = 0; i < original.size(); ++i)
        mean_err += percent_error(original[i], naive_born[i]);
      mean_err /= static_cast<double>(original.size());

      table.add_row({strict ? "strict (as printed)" : "consistent (default)",
                     Table::num(eps, 2), Table::num(params.born_far_multiplier(), 4),
                     Table::integer(static_cast<long long>(stats.far_terms)),
                     Table::integer(static_cast<long long>(stats.exact_pairs)),
                     Table::num(seconds, 4), Table::num(mean_err, 4)});
    }
  }
  harness::emit_table(table, "ablation_criterion");
  return 0;
}
