// Tables I & II: the modeled simulation environment and the package /
// GB-model / parallelism matrix, as implemented in this repository.
#include <iostream>

#include "baselines/registry.hpp"
#include "bench_common.hpp"
#include "mpisim/cluster.hpp"

int main() {
  using namespace gbpol;
  harness::print_figure_header("Table I", "Simulation environment (modeled)");
  harness::print_cluster_model(mpisim::ClusterModel::lonestar4());

  harness::print_figure_header("Table II", "Packages, GB models, parallelism");
  Table table({"id", "stands in for", "GB model", "parallelism"});
  for (const auto& info : baselines::package_table())
    table.add_row({std::string(info.name), std::string(info.paper_name),
                   std::string(info.gb_model), std::string(info.parallelism)});
  harness::emit_table(table, "table2_packages");
  return 0;
}
