// Fig. 6: scalability with increasing cores — min and max modeled running
// times over repeated runs (paper: 20 repetitions) for OCT_MPI vs
// OCT_MPI+CILK on the BTV substitute. The paper's observation: past ~180
// cores the hybrid's MIN time beats pure MPI's (lower comm/memory overhead),
// while its MAX time stays above (scheduler noise).
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Fig. 6", "Min/max running time vs cores (BTV substitute)");
  const double scale = harness::env_scale();
  const int reps = harness::env_reps(3);  // paper: 20
  const Molecule btv = molgen::btv_like(0.125 * scale);
  std::printf("molecule: %zu atoms; %d repetitions per configuration\n", btv.size(), reps);
  const PreparedMolecule pm = prepare(btv, 48);

  ApproxParams params;
  const GBConstants constants;
  const mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  Table table({"cores", "variant", "min(s)", "max(s)", "mean(s)", "std(s)"});
  BenchMetrics metrics("fig6_scalability");
  for (const int cores : {12, 24, 48, 96, 144, 192}) {
    // 192 cores exceeds the 12-node model; extend nodes proportionally.
    mpisim::ClusterModel c = cluster;
    c.nodes = std::max(c.nodes, cores / c.cores_per_node() + 1);
    for (const bool hybrid : {false, true}) {
      RunOptions config;
      config.mode = EngineMode::kDistributed;
      config.threads_per_rank = hybrid ? 6 : 1;
      config.ranks = cores / config.threads_per_rank;
      config.cluster = c;
      // One session over all repetitions: the entry's counters/histograms
      // aggregate the whole configuration sweep point.
      const auto timing = metrics.traced(
          std::string(hybrid ? "OCT_MPI+CILK" : "OCT_MPI") + " cores=" +
              std::to_string(cores) + " reps=" + std::to_string(reps),
          [&] {
            return harness::repeat_timed(reps, [&] {
              const RunResult r = Engine(pm.prep, params, constants).run(config);
              return std::make_pair(r.modeled_seconds(), r.wall_seconds);
            });
          });
      table.add_row({Table::integer(cores), hybrid ? "OCT_MPI+CILK" : "OCT_MPI",
                     Table::num(timing.modeled.min, 4), Table::num(timing.modeled.max, 4),
                     Table::num(timing.modeled.mean, 4),
                     Table::num(timing.modeled.stddev, 3)});
    }
  }
  harness::emit_table(table, "fig6_scalability");
  metrics.write("fig6_scalability");
  return 0;
}
