// Fig. 8(a): running time of every package across the suite on one modeled
// 12-core node; Fig. 8(b): speedup of each package w.r.t. the Amber-like
// HCT baseline (paper: OCT_MPI ~11x at 16k atoms, Gromacs ~2.7x,
// NAMD/Tinker/GBr6 near 1x).
#include <iostream>
#include <string_view>

#include "bench_common.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Fig. 8", "Package comparison on one 12-core node");
  const auto suite = suite_subset(/*stride=*/12);
  std::printf("%zu molecules (GBPOL_FULL=1 for all 84)\n", suite.size());

  harness::PackageEnv env;  // 12 cores, hybrid 2x6, eps 0.9/0.9
  const char* packages[] = {"naive",       "hct_amber", "hct_gromacs", "obc_namd",
                            "still_tinker", "gbr6",      "oct_mpi",     "oct_hybrid"};

  Table times({"atoms", "naive", "amber", "gromacs", "namd", "tinker", "gbr6",
               "oct_mpi", "oct_hybrid"});
  Table speedups({"atoms", "gromacs", "namd", "tinker", "gbr6", "oct_mpi",
                  "oct_hybrid"});  // relative to amber
  BenchMetrics metrics("fig8_packages");
  for (const Molecule& mol : suite) {
    const PreparedMolecule pm = prepare(mol);
    std::vector<double> seconds;
    for (const char* name : packages) {
      // Only the oct_* packages run through the instrumented distributed
      // driver; tracing the baselines would record empty sessions.
      const bool traced = std::string_view(name).starts_with("oct");
      const auto run =
          traced ? metrics.traced(
                       std::string(name) + " atoms=" + std::to_string(mol.size()),
                       [&] {
                         return harness::run_package(name, pm.mol, pm.quad,
                                                     pm.prep, env);
                       })
                 : harness::run_package(name, pm.mol, pm.quad, pm.prep, env);
      seconds.push_back(run.modeled_seconds);
    }
    const double amber = seconds[1];
    std::vector<std::string> time_row{Table::integer(static_cast<long long>(mol.size()))};
    for (const double s : seconds) time_row.push_back(Table::num(s, 4));
    times.add_row(std::move(time_row));
    speedups.add_row({Table::integer(static_cast<long long>(mol.size())),
                      Table::num(amber / seconds[2], 3), Table::num(amber / seconds[3], 3),
                      Table::num(amber / seconds[4], 3), Table::num(amber / seconds[5], 3),
                      Table::num(amber / seconds[6], 3), Table::num(amber / seconds[7], 3)});
  }
  std::printf("\nFig. 8(a) — modeled running time (s):\n");
  harness::emit_table(times, "fig8a_times");
  std::printf("\nFig. 8(b) — speedup w.r.t. the Amber-like baseline:\n");
  harness::emit_table(speedups, "fig8b_speedups");
  metrics.write("fig8_packages");
  return 0;
}
