// Ablation (extension): first-order dipole correction of the Born far
// field. At a fixed eps the corrected far field should cut the Born-radius
// and energy error for a small traversal-cost overhead — effectively buying
// back accuracy without shrinking eps.
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"
#include "core/naive.hpp"
#include "support/stats.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Dipole far-field correction on vs off");
  const auto suite = suite_subset(/*stride=*/14, /*max_atoms=*/8000);
  std::printf("%zu molecules\n", suite.size());
  const GBConstants constants;

  // The correction acts on the BORN-RADIUS far field, so the relevant
  // metric is the per-atom radius error vs the exact quadrature (the energy
  // error is dominated by the separate E_pol binning).
  Table table({"atoms", "eps", "mean R err off(%)", "mean R err on(%)",
               "time off(s)", "time on(s)"});
  for (const Molecule& mol : suite) {
    const PreparedMolecule pm = prepare(mol);
    const NaiveResult naive = run_naive(pm.mol, pm.quad, constants);
    for (const double eps : {0.5, 0.9}) {
      ApproxParams off;
      off.eps_born = eps;
      ApproxParams on = off;
      on.born_dipole_correction = true;
      const RunResult r_off = Engine(pm.prep, off, constants).run(serial_options());
      const RunResult r_on = Engine(pm.prep, on, constants).run(serial_options());
      auto mean_radius_error = [&](const RunResult& r) {
        const auto original = pm.prep.to_original_order(r.born_sorted);
        double sum = 0.0;
        for (std::size_t i = 0; i < original.size(); ++i)
          sum += percent_error(original[i], naive.born_radii[i]);
        return sum / static_cast<double>(original.size());
      };
      table.add_row({Table::integer(static_cast<long long>(mol.size())),
                     Table::num(eps, 2), Table::num(mean_radius_error(r_off), 4),
                     Table::num(mean_radius_error(r_on), 4),
                     Table::num(r_off.compute_seconds, 4),
                     Table::num(r_on.compute_seconds, 4)});
    }
  }
  harness::emit_table(table, "ablation_dipole");
  return 0;
}
