// Memory-scaling figure for the owned-mode domain decomposition (DESIGN.md
// "Domain decomposition & halo exchange"): per-rank modeled bytes at
// P = 1, 2, 4, 8 against the replicated layout on a >= 50k-point molecule.
// The owned side includes its halo and the node-scale structures that stay
// replicated by design (tree nodes, far-field bin store), so the curve
// flattens toward that floor instead of 1/P.
//
// Writes bench_out/memory_scaling.json and self-gates the ISSUE 7
// acceptance target: at 8 ranks the largest rank's owned footprint must be
// <= 0.35x the replicated per-rank footprint. Every point also re-certifies
// the 0-ulp contract against the replicated canonical answer — a memory win
// that changed the bits would be worthless.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header(
      "Memory", "Owned-mode per-rank footprint vs replicated (P = 1..8)");
  // Fine quadrature (the tests' grid, not the coarse bench grid) so the
  // molecule lands well above the 50k-point floor the acceptance target is
  // stated for; leaf capacity 16 matches the golden-equivalence battery.
  Molecule mol = molgen::synthetic_protein(3000, 23);
  PreparedMolecule pm{std::move(mol), {}, {}};
  pm.quad = surface::molecular_surface_quadrature(
      pm.mol, {.grid_spacing = 1.5, .dunavant_degree = 2, .kappa = 2.3});
  pm.prep = Prepared::build(pm.mol, pm.quad, /*leaf_capacity=*/16);
  const std::size_t points = pm.prep.num_atoms() + pm.prep.q_tree.num_points();
  std::printf("molecule: %zu atoms, %zu total points\n", pm.mol.size(), points);
  if (points < 50000) {
    std::fprintf(stderr, "FAIL: %zu points below the 50k scaling regime\n",
                 points);
    return 1;
  }

  const ApproxParams params;
  const GBConstants constants;
  const Engine engine(pm.prep, params, constants);

  struct Point {
    int ranks;
    RunResult result;
    double ratio;
  };
  std::vector<Point> points_out;
  double ratio_at_8 = 0.0;
  for (const int ranks : {1, 2, 4, 8}) {
    // The replicated twin at the SAME rank count: the canonical chunk plan
    // is a function of the rank count, so the 0-ulp contract is stated
    // against the same-P replicated fold.
    RunOptions replicated = distributed_options(ranks);
    replicated.canonical_reduction = true;
    const RunResult baseline = engine.run(replicated);

    RunOptions options = distributed_options(ranks);
    options.canonical_reduction = true;
    options.distribution = DataDistribution::kOwned;
    RunResult owned = engine.run(options);
    if (owned.owned_bytes_per_rank == 0 || owned.replicated_bytes == 0) {
      std::fprintf(stderr, "FAIL: owned routing did not engage at P=%d\n",
                   ranks);
      return 1;
    }
    if (owned.energy != baseline.energy) {
      std::fprintf(stderr, "FAIL: owned P=%d diverged: %.17g vs %.17g\n", ranks,
                   owned.energy, baseline.energy);
      return 1;
    }
    const double replicated_per_rank =
        static_cast<double>(owned.replicated_bytes) / ranks;
    const double ratio =
        static_cast<double>(owned.owned_bytes_per_rank) / replicated_per_rank;
    if (ranks == 8) ratio_at_8 = ratio;
    points_out.push_back({ranks, std::move(owned), ratio});
  }

  Table table({"ranks", "owned max rank (MiB)", "replicated rank (MiB)",
               "halo (MiB)", "ratio"});
  for (const Point& p : points_out) {
    const double mib = 1024.0 * 1024.0;
    table.add_row(
        {Table::integer(p.ranks),
         Table::num(static_cast<double>(p.result.owned_bytes_per_rank) / mib, 3),
         Table::num(static_cast<double>(p.result.replicated_bytes) / p.ranks / mib,
                    3),
         Table::num(static_cast<double>(p.result.owned_halo_bytes) / mib, 3),
         Table::num(p.ratio, 4)});
  }
  harness::emit_table(table, "memory_scaling");

  obs::json::Object root;
  root.emplace_back("schema_version", obs::json::Value(1));
  root.emplace_back("atoms",
                    obs::json::Value(static_cast<std::uint64_t>(pm.mol.size())));
  root.emplace_back("total_points",
                    obs::json::Value(static_cast<std::uint64_t>(points)));
  obs::json::Array curve;
  for (const Point& p : points_out) {
    obs::json::Object o;
    o.emplace_back("ranks", obs::json::Value(p.ranks));
    o.emplace_back("owned_bytes_per_rank",
                   obs::json::Value(
                       static_cast<std::uint64_t>(p.result.owned_bytes_per_rank)));
    o.emplace_back("owned_halo_bytes",
                   obs::json::Value(
                       static_cast<std::uint64_t>(p.result.owned_halo_bytes)));
    o.emplace_back("replicated_bytes_total",
                   obs::json::Value(
                       static_cast<std::uint64_t>(p.result.replicated_bytes)));
    o.emplace_back("ratio_vs_replicated_rank", obs::json::Value(p.ratio));
    curve.push_back(obs::json::Value(std::move(o)));
  }
  root.emplace_back("curve", obs::json::Value(std::move(curve)));
  root.emplace_back("ratio_at_8_ranks", obs::json::Value(ratio_at_8));
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::ofstream out("bench_out/memory_scaling.json");
  out << obs::json::Value(std::move(root)).dump() << '\n';
  out.close();
  std::printf("\nwrote bench_out/memory_scaling.json (ratio at 8 ranks %.4f)\n",
              ratio_at_8);

  if (ratio_at_8 > 0.35) {
    std::fprintf(stderr, "FAIL: 8-rank ratio %.4f above the 0.35 target\n",
                 ratio_at_8);
    return 1;
  }
  return 0;
}
