// Ablation (§II): octree vs nonbonded lists. The nblist's size grows
// ~cubically with the cutoff and must be rebuilt when atoms move; the octree
// is linear in the atom count, independent of the approximation parameter,
// and its build cost does not change with the cutoff.
#include <iostream>

#include "bench_common.hpp"
#include "nblist/nblist.hpp"
#include "support/timer.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Octree vs nonbonded list (space & update)");
  const Molecule mol = molgen::synthetic_protein(
      static_cast<std::size_t>(20000 * harness::env_scale()), 4242);
  std::vector<Vec3> pos(mol.size());
  for (std::size_t i = 0; i < mol.size(); ++i) pos[i] = mol.atom(i).pos;
  std::printf("molecule: %zu atoms\n", mol.size());

  // Octree: one build, any parameter.
  ThreadCpuTimer timer;
  const Octree tree = Octree::build(pos, {.leaf_capacity = 32, .max_depth = 20});
  const double octree_build = timer.seconds();
  const double octree_mib = tree.footprint().mib();
  std::printf("octree: %.2f MiB, built in %.4f s (cutoff-independent)\n\n", octree_mib,
              octree_build);

  Table table({"cutoff(A)", "nblist pairs", "nblist MiB", "build(s)", "rebuild(s)",
               "nblist/octree space"});
  for (const double cutoff : {4.0, 6.0, 8.0, 12.0, 16.0, 24.0}) {
    timer.reset();
    nblist::NonbondedList nb(pos, cutoff);
    const double build = timer.seconds();
    // Perturb every atom slightly (an MD step) and rebuild.
    std::vector<Vec3> moved = pos;
    for (Vec3& p : moved) p += Vec3{0.05, -0.03, 0.02};
    timer.reset();
    nb.rebuild(moved);
    const double rebuild = timer.seconds();
    table.add_row({Table::num(cutoff, 3),
                   Table::integer(static_cast<long long>(nb.num_pairs())),
                   Table::num(nb.footprint().mib(), 4), Table::num(build, 4),
                   Table::num(rebuild, 4),
                   Table::num(nb.footprint().mib() / octree_mib, 3)});
  }
  harness::emit_table(table, "ablation_octree_vs_nblist");
  return 0;
}
