// Fig. 7: performance comparison of the octree-based algorithms — OCT_CILK
// (shared-memory dual-tree), OCT_MPI and OCT_MPI+CILK — across the
// ZDock-like suite on one modeled 12-core node, with approximate math ON
// (as in the paper's Fig. 7), rows sorted by OCT_CILK time.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header(
      "Fig. 7", "Octree variants across the suite (approx math ON, 12 cores)");
  const auto suite = suite_subset(/*stride=*/7);
  std::printf("%zu molecules (GBPOL_FULL=1 for all 84)\n", suite.size());

  ApproxParams params;
  params.approx_math = true;
  const GBConstants constants;
  const mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  struct Row {
    std::size_t atoms;
    double cilk, mpi, hybrid;
  };
  std::vector<Row> rows;
  for (const Molecule& mol : suite) {
    const PreparedMolecule pm = prepare(mol);
    const Engine engine(pm.prep, params, constants);
    RunOptions mpi = distributed_options(12);
    mpi.cluster = cluster;
    RunOptions hybrid = distributed_options(2, 6);
    hybrid.cluster = cluster;
    Row row{mol.size(), 0, 0, 0};
    row.cilk = engine.run(cilk_options(12)).compute_seconds;
    row.mpi = engine.run(mpi).modeled_seconds();
    row.hybrid = engine.run(hybrid).modeled_seconds();
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.cilk < b.cilk; });

  Table table({"atoms", "OCT_CILK(s)", "OCT_MPI(s)", "OCT_MPI+CILK(s)"});
  for (const Row& r : rows)
    table.add_row({Table::integer(static_cast<long long>(r.atoms)),
                   Table::num(r.cilk, 4), Table::num(r.mpi, 4),
                   Table::num(r.hybrid, 4)});
  harness::emit_table(table, "fig7_octree_variants");
  return 0;
}
