// Fig. 9: energy values computed by the different packages across the
// suite. Paper: Amber / GBr6 / Gromacs / NAMD / OCT_* all close to naive;
// Tinker ~70% of naive; all octree variants agree with one another.
#include <iostream>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Fig. 9", "Energy values per package");
  const auto suite = suite_subset(/*stride=*/14, /*max_atoms=*/12000);
  std::printf("%zu molecules (GBPOL_FULL=1 for all 84)\n", suite.size());

  harness::PackageEnv env;
  const char* packages[] = {"naive",  "hct_amber", "hct_gromacs", "obc_namd",
                            "still_tinker", "gbr6", "oct_cilk",  "oct_mpi",
                            "oct_hybrid"};

  Table table({"atoms", "naive", "amber", "gromacs", "namd", "tinker", "gbr6",
               "oct_cilk", "oct_mpi", "oct_hybrid", "tinker/naive"});
  for (const Molecule& mol : suite) {
    const PreparedMolecule pm = prepare(mol);
    std::vector<double> energies;
    for (const char* name : packages)
      energies.push_back(harness::run_package(name, pm.mol, pm.quad, pm.prep, env).energy);
    std::vector<std::string> row{Table::integer(static_cast<long long>(mol.size()))};
    for (const double e : energies) row.push_back(Table::num(e, 6));
    row.push_back(Table::num(energies[4] / energies[0], 3));
    table.add_row(std::move(row));
  }
  harness::emit_table(table, "fig9_energy_values");
  std::printf("\n(kcal/mol; 'tinker/naive' is the paper's ~0.7 ratio)\n");
  return 0;
}
