// Fig. 9: energy values computed by the different packages across the
// suite. Paper: Amber / GBr6 / Gromacs / NAMD / OCT_* all close to naive;
// Tinker ~70% of naive; all octree variants agree with one another.
//
// Runs as a resumable campaign: with GBPOL_CAMPAIGN_DIR set, each molecule
// is a journaled job whose payload is its energy row, so a killed sweep
// resumes where it left off and completed rows are rebuilt from the journal
// without recomputation.
#include <sstream>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Fig. 9", "Energy values per package");
  const auto suite = suite_subset(/*stride=*/14, /*max_atoms=*/12000);
  std::printf("%zu molecules (GBPOL_FULL=1 for all 84)\n", suite.size());

  harness::PackageEnv env;
  const char* packages[] = {"naive",  "hct_amber", "hct_gromacs", "obc_namd",
                            "still_tinker", "gbr6", "oct_cilk",  "oct_mpi",
                            "oct_hybrid"};
  constexpr std::size_t kNumPackages = std::size(packages);

  harness::Campaign campaign(campaign_config("fig9_energy_values"));

  Table table({"atoms", "naive", "amber", "gromacs", "namd", "tinker", "gbr6",
               "oct_cilk", "oct_mpi", "oct_hybrid", "tinker/naive"});
  std::size_t index = 0;
  for (const Molecule& mol : suite) {
    const std::string job =
        "mol" + std::to_string(index++) + "/" + std::to_string(mol.size());
    const harness::JobStatus& st = campaign.run(job, [&] {
      const PreparedMolecule pm = prepare(mol);
      std::ostringstream payload;
      for (const char* name : packages) {
        if (payload.tellp() > 0) payload << ' ';
        payload << Table::num(
            harness::run_package(name, pm.mol, pm.quad, pm.prep, env).energy, 6);
      }
      return payload.str();
    });
    if (st.state != ckpt::JobState::kDone) {
      std::printf("  %s quarantined after %d attempts (%s): %s\n", job.c_str(),
                  st.attempts, std::string(to_string(st.error)).c_str(),
                  st.payload.c_str());
      continue;
    }
    std::istringstream payload(st.payload);
    std::vector<double> energies;
    for (double e; payload >> e;) energies.push_back(e);
    if (energies.size() != kNumPackages) {
      std::printf("  %s: malformed payload, skipping row\n", job.c_str());
      continue;
    }
    std::vector<std::string> row{Table::integer(static_cast<long long>(mol.size()))};
    for (const double e : energies) row.push_back(Table::num(e, 6));
    row.push_back(Table::num(energies[4] / energies[0], 3));
    table.add_row(std::move(row));
  }
  harness::emit_table(table, "fig9_energy_values");
  if (campaign.skipped() > 0)
    std::printf("(%d rows rebuilt from the campaign journal)\n",
                campaign.skipped());
  std::printf("\n(kcal/mol; 'tinker/naive' is the paper's ~0.7 ratio)\n");
  return 0;
}
