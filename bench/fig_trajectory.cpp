// Trajectory amortization figure (DESIGN.md "Incremental preparation &
// trajectories"): per-step wall time of the incremental trajectory engine
// against the cold re-prepare-every-frame baseline on a ~10k-atom
// receptor/ligand complex whose ligand jiggles below the skin margin — the
// docking-refinement regime the driver is built for.
//
// Writes bench_out/trajectory.json and self-gates the ISSUE 9 acceptance
// target: the median incremental step must cost <= 25% of the median cold
// step, at 0-ulp identical energies on every frame (ReuseMode contract —
// an amortization that changed the bits would be worthless).
#include <algorithm>
#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "core/incremental.hpp"
#include "support/timer.hpp"

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header(
      "Trajectory", "Incremental vs cold per-step cost, jiggling ligand");

  // ~10k-atom complex: a rigid receptor plus a ~600-atom ligand parked just
  // outside its bounding box. Only the ligand moves, well below the skin.
  Molecule receptor = molgen::synthetic_protein(9400, 31);
  Molecule ligand = molgen::synthetic_protein(600, 32);
  {
    std::vector<Vec3> rp(receptor.size()), lp(ligand.size());
    for (std::size_t i = 0; i < receptor.size(); ++i) rp[i] = receptor.atom(i).pos;
    for (std::size_t i = 0; i < ligand.size(); ++i) lp[i] = ligand.atom(i).pos;
    const Aabb rb = bounding_box(rp), lb = bounding_box(lp);
    // Corner contact: a small docking patch, not a face-on collision — the
    // Born blast radius of the jiggle stays a realistic fraction of the
    // receptor.
    ligand.translate({rb.hi.x - lb.lo.x + 2.0, rb.hi.y - lb.lo.y + 2.0,
                      rb.hi.z - lb.lo.z + 2.0});
  }
  const std::size_t n_receptor = receptor.size();
  Molecule complex_mol = receptor;
  complex_mol.append(ligand);
  std::printf("complex: %zu atoms (%zu receptor + %zu ligand)\n",
              complex_mol.size(), n_receptor, ligand.size());

  TrajectoryOptions topt;
  topt.surface = bench_quadrature_params();
  TrajectoryDriver inc(complex_mol, topt);
  TrajectoryDriver cold(complex_mol, topt);

  RunOptions inc_opts = serial_options();
  inc_opts.reuse = ReuseMode::kIncremental;
  RunOptions cold_opts = serial_options();
  cold_opts.reuse = ReuseMode::kCold;

  const int steps = std::max(4, harness::env_int("GBPOL_REPS", 6));
  std::vector<Vec3> pos(complex_mol.size());
  for (std::size_t i = 0; i < pos.size(); ++i) pos[i] = complex_mol.atom(i).pos;

  struct Step {
    double cold_seconds, inc_seconds, reused_fraction, energy;
    std::uint64_t dirty_leaves, lists_rebuilt;
  };
  std::vector<Step> rows;
  std::uint64_t rng = 0x11aa22bb;
  for (int s = 0; s < steps; ++s) {
    if (s > 0) {
      // Sub-skin ligand jiggle: ±0.05 A per axis against the 0.3 A skin.
      for (std::size_t i = n_receptor; i < pos.size(); ++i) {
        auto jig = [&rng] {
          rng += 0x9e3779b97f4a7c15ull;
          std::uint64_t z = rng;
          z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
          z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
          z ^= z >> 31;
          return 0.05 * (2.0 * (static_cast<double>(z >> 11) * 0x1.0p-53) - 1.0);
        };
        pos[i].x += jig();
        pos[i].y += jig();
        pos[i].z += jig();
      }
    }
    WallTimer tc;
    const RunResult rc = cold.step(pos, cold_opts);
    const double cold_s = tc.seconds();
    WallTimer ti;
    const RunResult ri = inc.step(pos, inc_opts);
    const double inc_s = ti.seconds();
    if (ri.energy != rc.energy) {
      std::fprintf(stderr, "FAIL: step %d diverged: %.17g vs %.17g\n", s,
                   ri.energy, rc.energy);
      return 1;
    }
    rows.push_back({cold_s, inc_s, ri.reused_fraction, ri.energy,
                    ri.dirty_leaves, ri.lists_rebuilt});
  }

  Table table({"step", "cold (s)", "incremental (s)", "ratio", "dirty leaves",
               "lists rebuilt", "reused"});
  std::vector<double> cold_med, inc_med;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const Step& r = rows[s];
    table.add_row({Table::integer(static_cast<int>(s)), Table::num(r.cold_seconds, 4),
                   Table::num(r.inc_seconds, 4),
                   Table::num(r.inc_seconds / r.cold_seconds, 4),
                   Table::integer(static_cast<long long>(r.dirty_leaves)),
                   Table::integer(static_cast<long long>(r.lists_rebuilt)),
                   Table::num(r.reused_fraction, 4)});
    if (s > 0) {  // step 0 is a cold start for both drivers
      cold_med.push_back(r.cold_seconds);
      inc_med.push_back(r.inc_seconds);
    }
  }
  harness::emit_table(table, "trajectory");

  const double mc = median(cold_med), mi = median(inc_med);
  const double ratio = mi / mc;
  std::printf("\nmedian cold %.4fs, median incremental %.4fs, ratio %.4f\n", mc,
              mi, ratio);

  obs::json::Object root;
  root.emplace_back("schema_version", obs::json::Value(1));
  root.emplace_back("atoms", obs::json::Value(
                                 static_cast<std::uint64_t>(complex_mol.size())));
  root.emplace_back("ligand_atoms",
                    obs::json::Value(static_cast<std::uint64_t>(ligand.size())));
  obs::json::Array arr;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const Step& r = rows[s];
    obs::json::Object o;
    o.emplace_back("step", obs::json::Value(static_cast<std::uint64_t>(s)));
    o.emplace_back("cold_seconds", obs::json::Value(r.cold_seconds));
    o.emplace_back("incremental_seconds", obs::json::Value(r.inc_seconds));
    o.emplace_back("dirty_leaves",
                   obs::json::Value(static_cast<std::uint64_t>(r.dirty_leaves)));
    o.emplace_back("lists_rebuilt",
                   obs::json::Value(static_cast<std::uint64_t>(r.lists_rebuilt)));
    o.emplace_back("reused_fraction", obs::json::Value(r.reused_fraction));
    o.emplace_back("energy", obs::json::Value(r.energy));
    arr.push_back(obs::json::Value(std::move(o)));
  }
  root.emplace_back("steps", obs::json::Value(std::move(arr)));
  root.emplace_back("median_cold_seconds", obs::json::Value(mc));
  root.emplace_back("median_incremental_seconds", obs::json::Value(mi));
  root.emplace_back("step_ratio", obs::json::Value(ratio));
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  std::ofstream out("bench_out/trajectory.json");
  out << obs::json::Value(std::move(root)).dump() << '\n';
  out.close();
  std::printf("wrote bench_out/trajectory.json (ratio %.4f)\n", ratio);

  if (ratio > 0.25) {
    std::fprintf(stderr, "FAIL: incremental/cold step ratio %.4f above 0.25\n",
                 ratio);
    return 1;
  }
  return 0;
}
