// Fig. 11 (table): scalability on a large molecule — the CMV-shell
// substitute. Rows mirror the paper: OCT_CILK, the Amber-like baseline,
// OCT_MPI+CILK and OCT_MPI at 12 and 144 cores, with speedup w.r.t. Amber,
// the energy, and the percent difference vs naive.
//
// Default size is a single-core-budget substitute (paper CMV: 509,640
// atoms); GBPOL_CMV_ATOMS or GBPOL_BENCH_SCALE raise it.
#include <iostream>

#include "baselines/hct.hpp"
#include "bench_common.hpp"
#include "core/drivers.hpp"
#include "core/naive.hpp"
#include "support/stats.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Fig. 11", "Large-molecule table (CMV-shell substitute)");
  const std::size_t n_atoms = static_cast<std::size_t>(
      harness::env_int("GBPOL_CMV_ATOMS",
                       static_cast<int>(30000 * harness::env_scale())));
  const Molecule cmv = molgen::virus_shell(n_atoms, 509640, 0.2, "cmv-shell");
  std::printf("molecule: %zu atoms (paper: 509,640)\n", cmv.size());
  const PreparedMolecule pm = prepare(cmv, 48);
  std::printf("quadrature points: %zu (paper: 1,929,128)\n", pm.quad.size());

  const GBConstants constants;
  ApproxParams params;  // 0.9/0.9
  const mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  std::printf("computing naive reference (O(M^2))...\n");
  const NaiveResult naive = run_naive(pm.mol, pm.quad, constants);

  // Amber-like baseline at 12 and 144 ranks; all pairs, as Amber GB's
  // effectively unbounded default cutoff (this quadratic cost is what the
  // paper's ~400x speedups are measured against).
  baselines::BaselineOptions amber_options;
  amber_options.cutoff = 0.0;
  amber_options.cluster = cluster;
  amber_options.ranks = 12;
  const auto amber12 = baselines::run_hct(pm.mol.atoms(), amber_options);
  amber_options.ranks = 144;
  const auto amber144 = baselines::run_hct(pm.mol.atoms(), amber_options);

  const Engine engine(pm.prep, params, constants);
  const RunResult cilk = engine.run(cilk_options(12));
  auto mpi_options = [&](int ranks, int threads) {
    RunOptions options = distributed_options(ranks, threads);
    options.cluster = cluster;
    return options;
  };
  const RunResult oct_mpi12 = engine.run(mpi_options(12, 1));
  const RunResult oct_mpi144 = engine.run(mpi_options(144, 1));
  const RunResult oct_hyb12 = engine.run(mpi_options(2, 6));
  const RunResult oct_hyb144 = engine.run(mpi_options(24, 6));

  auto diff = [&](double e) {
    return (e - naive.energy) / std::abs(naive.energy) * 100.0;
  };
  Table table({"program", "12 cores(s)", "144 cores(s)", "speedup vs Amber (12)",
               "speedup vs Amber (144)", "E_pol (kcal/mol)", "% diff w/ naive"});
  table.add_row({"OCT_CILK", Table::num(cilk.compute_seconds, 4), "X",
                 Table::num(amber12.modeled_seconds() / cilk.compute_seconds, 4), "X",
                 Table::num(cilk.energy, 6), Table::num(diff(cilk.energy), 3)});
  table.add_row({"Amber-like (HCT)", Table::num(amber12.modeled_seconds(), 4),
                 Table::num(amber144.modeled_seconds(), 4), "1", "1",
                 Table::num(amber12.energy, 6), Table::num(diff(amber12.energy), 3)});
  table.add_row(
      {"OCT_MPI+CILK", Table::num(oct_hyb12.modeled_seconds(), 4),
       Table::num(oct_hyb144.modeled_seconds(), 4),
       Table::num(amber12.modeled_seconds() / oct_hyb12.modeled_seconds(), 4),
       Table::num(amber144.modeled_seconds() / oct_hyb144.modeled_seconds(), 4),
       Table::num(oct_hyb12.energy, 6), Table::num(diff(oct_hyb12.energy), 3)});
  table.add_row(
      {"OCT_MPI", Table::num(oct_mpi12.modeled_seconds(), 4),
       Table::num(oct_mpi144.modeled_seconds(), 4),
       Table::num(amber12.modeled_seconds() / oct_mpi12.modeled_seconds(), 4),
       Table::num(amber144.modeled_seconds() / oct_mpi144.modeled_seconds(), 4),
       Table::num(oct_mpi12.energy, 6), Table::num(diff(oct_mpi12.energy), 3)});
  table.add_row({"Naive (exact)", Table::num(naive.born_seconds + naive.energy_seconds, 4),
                 "X", "-", "-", Table::num(naive.energy, 6), "0"});
  harness::emit_table(table, "fig11_cmv_table");
  return 0;
}
