// Ablation (paper §VI future work): explicit dynamic load balancing across
// ranks. Compares three divisions of the same computation:
//   static node-node (paper default), point-balanced segments (extension),
//   and self-scheduled chunks from a shared counter (dynamic, RPC-charged).
// The interesting column is the compute-makespan: dynamic wins when leaf
// occupancy is skewed, at the price of fetch RPCs.
#include <iostream>

#include "bench_common.hpp"
#include "core/drivers.hpp"

int main() {
  using namespace gbpol;
  using namespace gbpol::bench;

  harness::print_figure_header("Ablation", "Static vs balanced vs dynamic work division");
  // A bound complex plus a distant small fragment yields skewed leaf
  // occupancy (sparse regions produce thin leaves).
  Molecule mol = molgen::bound_complex(12000, 31337);
  Molecule fragment = molgen::synthetic_protein(1200, 31338);
  fragment.translate(Vec3{120, 80, 0});
  mol.append(fragment);
  const PreparedMolecule pm = prepare(mol);
  std::printf("molecule: %zu atoms (deliberately skewed layout)\n", pm.mol.size());

  ApproxParams params;
  const GBConstants constants;

  Table table({"P", "division", "modeled(s)", "compute max(s)", "comm(s)", "E_pol"});
  for (const int ranks : {4, 12, 48}) {
    for (const WorkDivision division :
         {WorkDivision::kNodeNode, WorkDivision::kNodeBalanced, WorkDivision::kDynamic}) {
      RunOptions options;
      options.mode = EngineMode::kDistributed;
      options.ranks = ranks;
      options.division = division;
      const RunResult r = Engine(pm.prep, params, constants).run(options);
      const char* name = division == WorkDivision::kNodeNode     ? "static node-node"
                         : division == WorkDivision::kNodeBalanced ? "point-balanced"
                                                                   : "dynamic (RPC)";
      table.add_row({Table::integer(ranks), name, Table::num(r.modeled_seconds(), 4),
                     Table::num(r.compute_seconds, 4), Table::num(r.comm_seconds, 5),
                     Table::num(r.energy, 6)});
    }
  }
  harness::emit_table(table, "ablation_dynamic_lb");
  return 0;
}
