// Command-line front end: compute the GB polarization energy (and
// optionally Born radii / gradients) of a structure file with any of the
// library's solvers.
//
// Usage:
//   gbpol_cli [options] [structure.{xyzqr,pqr}]
//
// Options:
//   --driver NAME     naive | serial | cilk | mpi | hybrid | datadist  [serial]
//   --eps X           approximation parameter for both phases          [0.9]
//   --cores N         modeled cores (ranks/threads per driver)         [12]
//   --leaf N          octree leaf capacity                             [32]
//   --grid H          surface grid spacing, Angstrom                   [1.5]
//   --r4              use the r^4 (Coulomb-field) Born kernel
//   --approx-math     fast rsqrt/exp kernels
//   --dipole          dipole far-field correction
//   --born            print per-atom Born radii
//   --grad            print the max-norm energy gradient
//   --synthetic N     ignore the file, generate an N-atom protein
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/distributed_data.hpp"
#include "core/engine.hpp"
#include "core/forces.hpp"
#include "core/naive.hpp"
#include "molecule/generate.hpp"
#include "molecule/io.hpp"
#include "surface/quadrature.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--driver naive|serial|cilk|mpi|hybrid|datadist] [--eps X]\n"
               "          [--cores N] [--leaf N] [--grid H] [--r4] [--approx-math]\n"
               "          [--dipole] [--born] [--grad] [--synthetic N] [file.{xyzqr,pqr}]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gbpol;

  std::string driver = "serial";
  std::string path;
  double eps = 0.9, grid = 1.5;
  int cores = 12;
  std::uint32_t leaf = 32;
  std::size_t synthetic = 0;
  bool r4 = false, approx_math = false, dipole = false, want_born = false,
       want_grad = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--driver") driver = next();
    else if (arg == "--eps") eps = std::atof(next());
    else if (arg == "--cores") cores = std::atoi(next());
    else if (arg == "--leaf") leaf = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--grid") grid = std::atof(next());
    else if (arg == "--synthetic") synthetic = std::strtoul(next(), nullptr, 10);
    else if (arg == "--r4") r4 = true;
    else if (arg == "--approx-math") approx_math = true;
    else if (arg == "--dipole") dipole = true;
    else if (arg == "--born") want_born = true;
    else if (arg == "--grad") want_grad = true;
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else if (!arg.empty() && arg[0] == '-') usage(argv[0]);
    else path = arg;
  }

  Molecule mol;
  try {
    if (synthetic > 0) {
      mol = molgen::synthetic_protein(synthetic, 42);
    } else if (path.empty()) {
      usage(argv[0]);
    } else if (path.size() > 4 && path.substr(path.size() - 4) == ".pqr") {
      mol = read_pqr_file(path);
    } else {
      mol = read_xyzqr_file(path);
    }
  } catch (const IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("molecule: %s, %zu atoms, net charge %+.3f e\n", mol.name().c_str(),
              mol.size(), mol.net_charge());

  const auto quad = surface::molecular_surface_quadrature(
      mol, {.grid_spacing = grid, .dunavant_degree = 2, .kappa = 2.3});
  const Prepared prep = Prepared::build(mol, quad, leaf);
  std::printf("surface: %zu quadrature points; octrees built in %.3f s\n", quad.size(),
              prep.build_seconds);

  ApproxParams params;
  params.eps_born = params.eps_epol = eps;
  params.approx_math = approx_math;
  params.born_dipole_correction = dipole;
  if (r4) params.radius_kernel = RadiusKernel::kR4;
  const GBConstants constants;

  double energy = 0.0;
  double modeled = 0.0;
  std::vector<double> born_sorted;
  if (driver == "naive") {
    const NaiveResult r = run_naive(mol, quad, constants);
    energy = r.energy;
    modeled = r.born_seconds + r.energy_seconds;
    born_sorted.resize(mol.size());
    for (std::uint32_t slot = 0; slot < mol.size(); ++slot)
      born_sorted[slot] = r.born_radii[prep.atoms_tree.original_index(slot)];
  } else if (driver == "serial" || driver == "cilk" || driver == "mpi" ||
             driver == "hybrid") {
    const Engine engine(prep, params, constants);
    RunOptions options;
    if (driver == "serial") {
      options.mode = EngineMode::kSerial;
    } else if (driver == "cilk") {
      options.mode = EngineMode::kCilk;
      options.threads_per_rank = cores;
    } else {
      options.mode = EngineMode::kDistributed;
      options.threads_per_rank = driver == "hybrid" ? 6 : 1;
      options.ranks = std::max(1, cores / options.threads_per_rank);
    }
    const RunResult r = engine.run(options);
    energy = r.energy;
    modeled = r.modeled_seconds();
    born_sorted = r.born_sorted;
  } else if (driver == "datadist") {
    RunConfig config;
    config.ranks = cores;
    const DataDistResult r = run_oct_data_distributed(prep, params, constants, config);
    energy = r.energy;
    modeled = r.modeled_seconds();
  } else {
    usage(argv[0]);
  }

  std::printf("\nE_pol = %.6f kcal/mol   (driver %s, eps %.2f, modeled %.4f s)\n",
              energy, driver.c_str(), eps, modeled);

  if (want_born && !born_sorted.empty()) {
    const auto born = prep.to_original_order(born_sorted);
    std::printf("\n# atom  born_radius\n");
    for (std::size_t i = 0; i < born.size(); ++i)
      std::printf("%zu %.6f\n", i, born[i]);
  }
  if (want_grad && !born_sorted.empty()) {
    const EpolSolver epol(prep, born_sorted, params, constants);
    const EpolGradientSolver grad_solver(prep, born_sorted, epol, constants);
    const auto grad = grad_solver.gradient_all();
    double max_norm = 0.0;
    std::size_t arg = 0;
    for (std::size_t i = 0; i < grad.size(); ++i) {
      if (norm(grad[i]) > max_norm) {
        max_norm = norm(grad[i]);
        arg = i;
      }
    }
    std::printf("max |dE/dx| = %.6f kcal/mol/A at atom %zu\n", max_norm, arg);
  }
  return 0;
}
