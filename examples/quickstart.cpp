// Quickstart: compute the GB polarization energy of a molecule with the
// octree-approximated pipeline and compare it against the exact reference.
//
// Usage:
//   quickstart [molecule.xyzqr]
//
// Without an argument a synthetic 2,000-atom protein is generated. With one,
// the file is read in xyzqr format (count line, then `x y z charge radius`
// per atom).
#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "core/naive.hpp"
#include "molecule/generate.hpp"
#include "molecule/io.hpp"
#include "support/stats.hpp"
#include "surface/quadrature.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;

  // 1. Obtain a molecule.
  Molecule mol = argc > 1 ? read_xyzqr_file(argv[1])
                          : molgen::synthetic_protein(2000, /*seed=*/42);
  std::printf("molecule: %s (%zu atoms, net charge %+.2f e)\n", mol.name().c_str(),
              mol.size(), mol.net_charge());

  // 2. Sample the molecular surface: Gaussian density -> marching
  //    tetrahedra -> Dunavant quadrature (points, outward normals, weights).
  const surface::SurfaceQuadrature quad = surface::molecular_surface_quadrature(mol);
  std::printf("surface:  %zu quadrature points (total area %.0f A^2)\n", quad.size(),
              quad.total_weight());

  // 3. Build the two octrees (parameter-independent preprocessing; reusable
  //    across approximation settings and ligand poses).
  const Prepared prep = Prepared::build(mol, quad, /*leaf_capacity=*/32);
  std::printf("octrees:  %zu atom nodes, %zu q-point nodes (built in %.3f s)\n",
              prep.atoms_tree.nodes().size(), prep.q_tree.nodes().size(),
              prep.build_seconds);

  // 4. Solve with the paper's settings (eps = 0.9 for both phases) on a
  //    modeled 12-core node: 2 ranks x 6 threads (the hybrid OCT_MPI+CILK).
  ApproxParams params;  // eps_born = eps_epol = 0.9
  const Engine engine(prep, params, GBConstants{});
  RunOptions options;
  options.mode = EngineMode::kDistributed;
  options.ranks = 2;
  options.threads_per_rank = 6;
  const RunResult result = engine.run(options);
  std::printf("\nOCT_MPI+CILK (2 ranks x 6 threads):\n");
  std::printf("  E_pol            = %.4f kcal/mol\n", result.energy);
  std::printf("  modeled time     = %.4f s (compute %.4f + comm %.6f)\n",
              result.modeled_seconds(), result.compute_seconds, result.comm_seconds);

  // 5. Exact reference (naive Eq. 2/4) and the error the approximation made.
  const NaiveResult naive = run_naive(mol, quad, GBConstants{});
  std::printf("\nnaive exact reference:\n");
  std::printf("  E_pol            = %.4f kcal/mol (in %.3f s)\n", naive.energy,
              naive.born_seconds + naive.energy_seconds);
  std::printf("  octree error     = %.3f %%\n",
              percent_error(result.energy, naive.energy));
  std::printf("  octree speedup   = %.1fx (modeled vs naive serial)\n",
              (naive.born_seconds + naive.energy_seconds) / result.modeled_seconds());
  return 0;
}
