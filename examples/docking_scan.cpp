// Docking-style pose scan — the drug-design workload the paper's
// introduction motivates: place a ligand at many positions relative to a
// receptor and rank poses by the GB polarization energy of the complex.
//
// The complex is evaluated through TrajectoryDriver (core/incremental.hpp):
// between poses only the ligand atoms move, so the receptor's octree
// subtrees, interaction-list work and cached near-field partials carry over;
// the pose jump itself re-anchors just the ligand-side leaves. The scan is
// translation-only (gap + lateral slide) because the driver attaches the
// marched surface rigidly to its supporting atoms — offsets translate with a
// pose but do not rotate.
//
// Self-asserting (smoke-tested by CTest): every pose must produce a finite
// energy, the scan must visit all poses, and the association energy must
// decay toward zero as the gap opens — exits non-zero otherwise.
//
// Usage: docking_scan [n_receptor_atoms] [n_poses]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/incremental.hpp"
#include "molecule/generate.hpp"
#include "support/table.hpp"
#include "surface/quadrature.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;
  const std::size_t receptor_atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  const int n_poses = argc > 2 ? std::atoi(argv[2]) : 8;

  const Molecule receptor = molgen::synthetic_protein(receptor_atoms, 1001);
  const Molecule ligand = molgen::synthetic_protein(receptor_atoms / 8, 1002);
  std::printf("receptor: %zu atoms, ligand: %zu atoms, %d poses\n\n",
              receptor.size(), ligand.size(), n_poses);

  // Reference energies of the isolated molecules (for a crude dE_pol of
  // association: E(complex) - E(receptor) - E(ligand)). One-shot preparations
  // outside the pose loop. (trajectory-cold-baseline)
  ApproxParams params;
  const GBConstants constants;
  auto solve = [&](const Molecule& mol) {
    const auto quad = surface::molecular_surface_quadrature(mol);
    const Prepared prep = Prepared::build(mol, quad, 32);  // trajectory-cold-baseline
    return Engine(prep, params, constants).run(serial_options()).energy;
  };
  const double e_receptor = solve(receptor);
  const double e_ligand = solve(ligand);
  std::printf("E_pol(receptor) = %.2f kcal/mol\nE_pol(ligand)   = %.2f kcal/mol\n\n",
              e_receptor, e_ligand);

  // The scanned complex: ligand parked at the pose-0 gap; later poses only
  // translate its atoms, so one driver serves the whole scan.
  const Aabb rb = receptor.bounding_box();
  const Aabb lb = ligand.bounding_box();
  const Vec3 base{rb.hi.x - lb.lo.x + 0.5, rb.center().y - lb.center().y,
                  rb.center().z - lb.center().z};
  Molecule complex_mol = receptor;
  {
    Molecule posed = ligand;
    posed.translate(base);
    complex_mol.append(posed);
  }
  TrajectoryDriver driver(complex_mol, {}, params, constants);

  std::vector<Vec3> pos(complex_mol.size());
  for (std::size_t i = 0; i < complex_mol.size(); ++i)
    pos[i] = complex_mol.atom(i).pos;

  Table table({"pose", "gap(A)", "slide(A)", "E_complex", "dE_pol"});
  double best = 1e300, first_de = 0.0, last_de = 0.0;
  int best_pose = -1, visited = 0;
  for (int pose = 0; pose < n_poses; ++pose) {
    // Pose grid: interface gap sweeps 0.5..4 A with a small lateral slide.
    const double gap = 0.5 + 3.5 * pose / std::max(1, n_poses - 1);
    const double slide = 0.8 * pose;
    const Vec3 shift{gap - 0.5, slide, 0.0};
    for (std::size_t i = receptor.size(); i < pos.size(); ++i)
      pos[i] = complex_mol.atom(i).pos + shift;

    const RunResult r = driver.step(pos);
    const double de = r.energy - e_receptor - e_ligand;
    if (!std::isfinite(r.energy)) {
      std::fprintf(stderr, "FAIL: pose %d produced a non-finite energy\n", pose);
      return 1;
    }
    table.add_row({Table::integer(pose), Table::num(gap, 3), Table::num(slide, 3),
                   Table::num(r.energy, 6), Table::num(de, 4)});
    if (r.energy < best) {
      best = r.energy;
      best_pose = pose;
    }
    if (pose == 0) first_de = de;
    last_de = de;
    ++visited;
  }
  table.print(std::cout);
  std::printf("\nbest pose by E_pol: #%d (E = %.2f kcal/mol)\n", best_pose, best);

  if (visited != n_poses) {
    std::fprintf(stderr, "FAIL: scan visited %d of %d poses\n", visited, n_poses);
    return 1;
  }
  // Association energy must fade as the ligand pulls away from the receptor.
  if (n_poses > 2 && !(std::abs(last_de) < std::abs(first_de))) {
    std::fprintf(stderr,
                 "FAIL: |dE_pol| did not decay with gap (%.4f -> %.4f)\n",
                 first_de, last_de);
    return 1;
  }
  return 0;
}
