// Docking-style pose scan — the drug-design workload the paper's
// introduction motivates: place a ligand at many positions/orientations
// relative to a receptor and rank poses by the GB polarization energy of the
// complex. The octrees are rebuilt per pose, but the approximation
// parameters and the receptor structure are reused.
//
// Usage: docking_scan [n_receptor_atoms] [n_poses]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/engine.hpp"
#include "molecule/generate.hpp"
#include "support/table.hpp"
#include "surface/quadrature.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;
  const std::size_t receptor_atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  const int n_poses = argc > 2 ? std::atoi(argv[2]) : 8;

  const Molecule receptor = molgen::synthetic_protein(receptor_atoms, 1001);
  const Molecule ligand = molgen::synthetic_protein(receptor_atoms / 8, 1002);
  std::printf("receptor: %zu atoms, ligand: %zu atoms, %d poses\n\n",
              receptor.size(), ligand.size(), n_poses);

  // Reference energies of the isolated molecules (for a crude dE_pol of
  // association: E(complex) - E(receptor) - E(ligand)).
  ApproxParams params;
  const GBConstants constants;
  auto solve = [&](const Molecule& mol) {
    const auto quad = surface::molecular_surface_quadrature(mol);
    const Prepared prep = Prepared::build(mol, quad, 32);
    return Engine(prep, params, constants).run(serial_options()).energy;
  };
  const double e_receptor = solve(receptor);
  const double e_ligand = solve(ligand);
  std::printf("E_pol(receptor) = %.2f kcal/mol\nE_pol(ligand)   = %.2f kcal/mol\n\n",
              e_receptor, e_ligand);

  Table table({"pose", "gap(A)", "rot(rad)", "E_complex", "dE_pol"});
  double best = 1e300;
  int best_pose = -1;
  for (int pose = 0; pose < n_poses; ++pose) {
    // Pose grid: interface gap sweeps 0.5..4 A, ligand rotates about z.
    const double gap = 0.5 + 3.5 * pose / std::max(1, n_poses - 1);
    const double angle = 0.7 * pose;

    Molecule complex = receptor;
    Molecule posed = ligand;
    posed.rotate(Vec3{0, 0, 1}, angle);
    const Aabb rb = receptor.bounding_box();
    const Aabb lb = posed.bounding_box();
    posed.translate(Vec3{rb.hi.x - lb.lo.x + gap,
                         rb.center().y - lb.center().y,
                         rb.center().z - lb.center().z});
    complex.append(posed);

    const double e_complex = solve(complex);
    const double de = e_complex - e_receptor - e_ligand;
    table.add_row({Table::integer(pose), Table::num(gap, 3), Table::num(angle, 3),
                   Table::num(e_complex, 6), Table::num(de, 4)});
    if (e_complex < best) {
      best = e_complex;
      best_pose = pose;
    }
  }
  table.print(std::cout);
  std::printf("\nbest pose by E_pol: #%d (E = %.2f kcal/mol)\n", best_pose, best);
  return 0;
}
