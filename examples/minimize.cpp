// Gradient-descent energy relaxation — a miniature of the MD use case the
// paper's introduction motivates ("molecular dynamics simulations for
// determining the molecular conformation with minimal total free energy").
//
// Each step: frozen-radii GB gradient from the octree solver, a damped
// descent step, then Octree::refit (topology kept, geometry updated) — the
// octree update path the paper contrasts with nblist rebuilds. The Born
// radii and surface are refreshed every `resample` steps.
//
// Usage: minimize [n_atoms] [steps]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "core/forces.hpp"
#include "molecule/generate.hpp"
#include "surface/quadrature.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;
  const std::size_t n_atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 12;
  const int resample = 4;  // surface + Born refresh cadence

  Molecule mol = molgen::synthetic_protein(n_atoms, 2026);
  ApproxParams params;
  const GBConstants constants;

  std::printf("minimizing E_pol of %zu atoms, %d steps (frozen-radii gradient)\n\n",
              mol.size(), steps);
  std::printf("%-6s %-16s %-12s %s\n", "step", "E_pol(kcal/mol)", "max|g|", "note");

  surface::SurfaceQuadrature quad;
  Prepared prep;
  std::vector<double> born_sorted;
  for (int step = 0; step < steps; ++step) {
    const bool refresh = step % resample == 0;
    if (refresh) {
      // Full re-preparation: new surface, new octrees, new Born radii.
      quad = surface::molecular_surface_quadrature(mol);
      prep = Prepared::build(mol, quad, 32);
      const RunResult r = Engine(prep, params, constants).run(serial_options());
      born_sorted = r.born_sorted;
    } else {
      // Cheap path: refit the atoms octree to the moved coordinates and
      // keep the previous Born radii (frozen-radii approximation).
      std::vector<Vec3> pos(mol.size());
      for (std::size_t i = 0; i < mol.size(); ++i) pos[i] = mol.atom(i).pos;
      prep.atoms_tree.refit(pos);
    }

    const EpolSolver epol(prep, born_sorted, params, constants);
    const double energy = epol.energy_for_leaf_range(
        0, static_cast<std::uint32_t>(prep.atoms_tree.leaves().size()));
    const EpolGradientSolver grad_solver(prep, born_sorted, epol, constants);
    const auto grad = grad_solver.gradient_all();

    double max_g = 0.0;
    for (const Vec3& g : grad) max_g = std::max(max_g, norm(g));
    std::printf("%-6d %-16.4f %-12.4f %s\n", step, energy, max_g,
                refresh ? "(resampled surface)" : "(octree refit)");

    // Damped steepest descent; step length capped at 0.05 A per atom so the
    // frozen radii stay a fair approximation between refreshes.
    const double rate = std::min(0.05 / std::max(max_g, 1e-12), 1e-3);
    for (std::size_t i = 0; i < mol.size(); ++i)
      mol.atoms()[i].pos -= grad[i] * rate;
  }
  std::printf("\ndone; descending along dE_pol/dx only (no bonded terms — this\n"
              "demonstrates the gradient/refit machinery, not a force field).\n");
  return 0;
}
