// Gradient-descent energy relaxation — a miniature of the MD use case the
// paper's introduction motivates ("molecular dynamics simulations for
// determining the molecular conformation with minimal total free energy").
//
// Each step: frozen-radii GB gradient from the octree solver, a damped
// descent step, then TrajectoryDriver::step re-evaluates the moved geometry
// through the incremental engine (core/incremental.hpp) — sub-skin moves
// reuse the octrees, interaction lists and cached near-field partials;
// atoms drifting past their leaf's skin margin trigger a surgical re-anchor.
// No re-preparation appears in the loop at all.
//
// Self-asserting (smoke-tested by CTest): the energy must come down net over
// the run, and some work must actually be reused — exits non-zero otherwise.
//
// Usage: minimize [n_atoms] [steps]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/incremental.hpp"
#include "molecule/generate.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;
  const std::size_t n_atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 12;

  const Molecule mol = molgen::synthetic_protein(n_atoms, 2026);
  TrajectoryDriver driver(mol);

  std::printf("minimizing E_pol of %zu atoms, %d steps (frozen-radii gradient)\n\n",
              mol.size(), steps);
  std::printf("%-6s %-16s %-12s %-8s %s\n", "step", "E_pol(kcal/mol)", "max|g|",
              "reused", "note");

  std::vector<Vec3> pos(mol.size());
  for (std::size_t i = 0; i < mol.size(); ++i) pos[i] = mol.atom(i).pos;

  double first_energy = 0.0, last_energy = 0.0;
  int structure_reuse_steps = 0;
  for (int step = 0; step < steps; ++step) {
    const RunResult r = driver.step(pos);
    const auto grad = driver.last_gradient();

    double max_g = 0.0;
    for (const Vec3& g : grad) max_g = std::max(max_g, norm(g));
    std::printf("%-6d %-16.4f %-12.4f %-8.3f %s\n", step, r.energy, max_g,
                r.reused_fraction,
                driver.last_stats().re_anchored ? "(re-anchored)"
                                                : "(lists reused)");
    if (step == 0) first_energy = r.energy;
    last_energy = r.energy;
    // Whole-molecule descent moves every atom, so per-pair partials go stale
    // each step; the reuse here is structural — trees, surface and
    // interaction lists carry over while the drift stays inside the skin.
    if (step > 0 && r.lists_rebuilt == 0) ++structure_reuse_steps;

    // Damped steepest descent; step length capped at 0.05 A per atom so the
    // frozen radii stay a fair approximation and most steps ride inside the
    // skin margin.
    const double rate = std::min(0.05 / std::max(max_g, 1e-12), 1e-3);
    for (std::size_t i = 0; i < pos.size(); ++i) pos[i] -= grad[i] * rate;
  }
  std::printf("\ndone; descending along dE_pol/dx only (no bonded terms — this\n"
              "demonstrates the gradient/incremental machinery, not a force "
              "field).\n");

  if (!(last_energy < first_energy)) {
    std::fprintf(stderr, "FAIL: no net energy decrease (%.6f -> %.6f)\n",
                 first_energy, last_energy);
    return 1;
  }
  if (steps > 1 && structure_reuse_steps == 0) {
    std::fprintf(stderr,
                 "FAIL: the incremental engine never reused the prepared "
                 "structures\n");
    return 1;
  }
  return 0;
}
