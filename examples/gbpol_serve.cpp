// Serving-layer quickstart (serve/service.hpp): stand up a gbpol::Service,
// submit a small multi-tenant mix — a cold molecule, exact re-scores, and
// jittered docking poses — and print which serving path answered each
// request along with its accounting (cache hit, queue/serve seconds).
//
// Self-asserting (smoke-tested by CTest): the re-score must be memoized and
// bit-identical to the cold serve, every pose must be delta-routed, and all
// energies must be finite — exits non-zero otherwise.
//
// Usage: gbpol_serve [n_atoms] [n_poses]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "molecule/generate.hpp"
#include "serve/service.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;
  const std::size_t n_atoms =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  const int n_poses = argc > 2 ? std::atoi(argv[2]) : 4;

  // Service policy: run shape, cache budget, delta routing. Tenants only
  // submit molecules; the topology is the operator's business.
  ServiceOptions options;
  options.campaign_dir = "-";  // quickstart: no durable journal
  Service service(options);

  const Molecule base = molgen::synthetic_protein(n_atoms, 77);
  const auto request = [&](const Molecule& mol, const std::string& id) {
    ServeRequest req;
    req.id = id;
    req.mol = mol;
    return req;
  };

  // A tenant scores a target, another re-scores the same bits, and a
  // docking scan walks jittered poses of the same family.
  std::printf("serving %zu-atom molecule, %d docking poses\n\n", base.size(),
              n_poses);
  std::vector<ServeResult> results;
  results.push_back(service.serve(request(base, "tenant-a/score")));
  results.push_back(service.serve(request(base, "tenant-b/rescore")));
  for (int pose = 1; pose <= n_poses; ++pose) {
    Molecule moved = base;
    // Sub-skin ligand jiggle: move the first few atoms by < 0.1 A.
    auto span = moved.atoms().subspan(0, std::max<std::size_t>(1, n_atoms / 100));
    for (std::size_t i = 0; i < span.size(); ++i) {
      span[i].pos.x += 0.02 * pose;
      span[i].pos.y -= 0.015 * pose;
    }
    results.push_back(
        service.serve(request(moved, "tenant-c/pose-" + std::to_string(pose))));
  }

  Table table({"job", "path", "E_pol", "cache", "queue (ms)", "serve (ms)"});
  for (const ServeResult& r : results)
    table.add_row({r.job_id, serve_path_name(r.path),
                   Table::num(r.result.energy, 6),
                   r.result.cache_hit ? "hit" : "miss",
                   Table::num(1e3 * r.result.queue_seconds, 3),
                   Table::num(1e3 * r.result.serve_seconds, 3)});
  table.print(std::cout);

  const ServiceStats stats = service.stats();
  std::printf("\nserved %llu requests: %llu cold, %llu memoized, %llu "
              "delta-routed; prepared cache %zu entries / %zu bytes\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.cold),
              static_cast<unsigned long long>(stats.memo_hits),
              static_cast<unsigned long long>(stats.delta_routed),
              service.cache_entries(), service.cache_bytes());

  for (const ServeResult& r : results) {
    if (!std::isfinite(r.result.energy)) {
      std::fprintf(stderr, "FAIL: %s produced a non-finite energy\n",
                   r.job_id.c_str());
      return 1;
    }
  }
  if (results[0].path != ServePath::kCold ||
      results[1].path != ServePath::kMemoized ||
      results[1].result.energy != results[0].result.energy) {
    std::fprintf(stderr,
                 "FAIL: re-score was not a bit-identical memoized replay\n");
    return 1;
  }
  if (stats.delta_routed != static_cast<std::uint64_t>(n_poses)) {
    std::fprintf(stderr, "FAIL: %d poses submitted, %llu delta-routed\n",
                 n_poses,
                 static_cast<unsigned long long>(stats.delta_routed));
    return 1;
  }
  return 0;
}
