// Speed-accuracy trade-off — the library's "space-independent tunability"
// property: sweep the approximation parameter eps and report error vs the
// exact energy and time, reusing ONE Prepared (octrees are parameter-
// independent, §IV-C step 1).
//
// Usage: accuracy_tradeoff [n_atoms]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/naive.hpp"
#include "molecule/generate.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "surface/quadrature.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;
  const std::size_t n_atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3000;

  const Molecule mol = molgen::synthetic_protein(n_atoms, 7777);
  const auto quad = surface::molecular_surface_quadrature(mol);
  const Prepared prep = Prepared::build(mol, quad, 32);
  const NaiveResult naive = run_naive(mol, quad, GBConstants{});
  std::printf("molecule: %zu atoms, naive E_pol = %.4f kcal/mol (%.2f s)\n\n",
              mol.size(), naive.energy, naive.born_seconds + naive.energy_seconds);

  Table table({"eps", "E_pol", "error(%)", "time(s)", "speedup vs naive",
               "approx math"});
  const double naive_seconds = naive.born_seconds + naive.energy_seconds;
  for (const bool approx_math : {false, true}) {
    for (const double eps : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      ApproxParams params;
      params.eps_born = eps;
      params.eps_epol = eps;
      params.approx_math = approx_math;
      const RunResult r = Engine(prep, params, GBConstants{}).run(serial_options());
      table.add_row({Table::num(eps, 2), Table::num(r.energy, 6),
                     Table::num(percent_error(r.energy, naive.energy), 3),
                     Table::num(r.compute_seconds, 3),
                     Table::num(naive_seconds / r.compute_seconds, 3),
                     approx_math ? "on" : "off"});
    }
  }
  table.print(std::cout);
  std::printf("\nNote: one octree build served all %d configurations.\n", 10);
  return 0;
}
