// Virus-capsid scale run — the paper's §V-F scenario: a large hollow-shell
// molecule (CMV-like), solved with the pure-MPI and hybrid drivers across
// increasing core counts on the modeled cluster, reporting modeled times and
// the replicated-memory gap between the two (§V-B).
//
// Usage: virus_shell [n_atoms] (default 30000; paper's CMV is 509,640)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "molecule/generate.hpp"
#include "molecule/suite.hpp"
#include "support/table.hpp"
#include "surface/quadrature.hpp"

int main(int argc, char** argv) {
  using namespace gbpol;
  const std::size_t n_atoms = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30000;

  const Molecule shell = molgen::virus_shell(n_atoms, 509640, 0.2, "cmv-like-shell");
  std::printf("molecule: %s (%zu atoms)\n", shell.name().c_str(), shell.size());

  const auto quad = surface::molecular_surface_quadrature(
      shell, {.grid_spacing = 2.0, .dunavant_degree = 1, .kappa = 2.3});
  std::printf("surface:  %zu quadrature points\n", quad.size());

  const Prepared prep = Prepared::build(shell, quad, 48);
  std::printf("octrees built in %.2f s (%.1f MiB replicated per rank)\n\n",
              prep.build_seconds, prep.replicated_footprint().mib());

  ApproxParams params;  // paper settings: eps 0.9 / 0.9
  const GBConstants constants;
  const mpisim::ClusterModel cluster = mpisim::ClusterModel::lonestar4();

  Table table({"cores", "variant", "ranks x threads", "modeled(s)", "compute(s)",
               "comm(s)", "memory(MiB)", "E_pol"});
  for (const int cores : {12, 48, 144}) {
    // Pure MPI: one rank per core. Hybrid: one rank per socket, 6 threads.
    const Engine engine(prep, params, constants);
    RunOptions mpi;
    mpi.mode = EngineMode::kDistributed;
    mpi.ranks = cores;
    mpi.threads_per_rank = 1;
    mpi.cluster = cluster;
    const RunResult a = engine.run(mpi);
    table.add_row({Table::integer(cores), "OCT_MPI",
                   std::to_string(cores) + " x 1", Table::num(a.modeled_seconds(), 4),
                   Table::num(a.compute_seconds, 4), Table::num(a.comm_seconds, 4),
                   Table::num(static_cast<double>(a.replicated_bytes) / (1 << 20), 4),
                   Table::num(a.energy, 6)});

    RunOptions hybrid = mpi;
    hybrid.ranks = cores / 6;
    hybrid.threads_per_rank = 6;
    const RunResult b = engine.run(hybrid);
    table.add_row({Table::integer(cores), "OCT_MPI+CILK",
                   std::to_string(cores / 6) + " x 6", Table::num(b.modeled_seconds(), 4),
                   Table::num(b.compute_seconds, 4), Table::num(b.comm_seconds, 4),
                   Table::num(static_cast<double>(b.replicated_bytes) / (1 << 20), 4),
                   Table::num(b.energy, 6)});

    std::printf("cores=%3d: memory ratio MPI/hybrid = %.2fx\n", cores,
                static_cast<double>(a.replicated_bytes) /
                    static_cast<double>(b.replicated_bytes));
  }
  std::printf("\n");
  table.print(std::cout);
  return 0;
}
